//! Synthetic SOSD-style datasets and workload builders.
//!
//! The paper evaluates on four real 200-million-key datasets (Facebook user
//! IDs, Covid tweet IDs, OSM cell IDs and Genome loci). Those datasets are
//! not redistributable here, so this crate provides deterministic synthetic
//! generators tuned to reproduce the property that drives the paper's
//! results: Facebook and Covid have globally and locally near-linear CDFs
//! ("easy"), while OSM and Genome have heavy local irregularity ("hard") and
//! therefore force deep learned-index hierarchies (see DESIGN.md §3 for the
//! substitution rationale).
//!
//! Modules:
//!
//! * [`generators`] — the four dataset analogues plus generic distributions,
//! * [`cdf`] — CDF shape statistics used to regenerate Fig. 5,
//! * [`downsample`] — every-j-th down-sampling used by the cardinality sweep
//!   (Fig. 9),
//! * [`workload`] — read-only and read-write workload builders (§6.1),
//! * [`zipf`] — Zipfian (skewed) query sampling,
//! * [`mixed`] — YCSB-style mixed-operation workloads (reads / inserts /
//!   removals / scans),
//! * [`io`] — SOSD-format binary dataset files (save / load).

#![forbid(unsafe_code)]

pub mod cdf;
pub mod downsample;
pub mod generators;
pub mod io;
pub mod mixed;
pub mod workload;
pub mod zipf;

pub use cdf::{CdfStats, ZoomedWindow};
pub use downsample::downsample_every_jth;
pub use generators::{Dataset, DatasetSpec};
pub use mixed::{MixedWorkload, MixedWorkloadSpec, Operation, OperationMix, Popularity};
pub use workload::{QueryMix, ReadOnlyWorkload, ReadWriteWorkload};
pub use zipf::Zipfian;
