//! Binary dataset files in the SOSD format.
//!
//! The paper's datasets come from the SOSD / "Benchmarking learned indexes"
//! suites, which store each dataset as a little-endian `u64` count followed
//! by that many little-endian `u64` keys. Writing the same format means the
//! synthetic analogues generated here can be inspected with the upstream
//! tooling, and real SOSD files (when available) can be dropped in and loaded
//! by the experiment harness via `--dataset-file`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use csv_common::Key;
use std::fs;
use std::io;
use std::path::Path;

/// Serialises keys into the SOSD binary layout (`u64` count + keys, little
/// endian).
pub fn encode_keys(keys: &[Key]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + keys.len() * 8);
    buf.put_u64_le(keys.len() as u64);
    for &k in keys {
        buf.put_u64_le(k);
    }
    buf.freeze()
}

/// Parses keys from the SOSD binary layout.
///
/// Returns an error when the buffer is truncated or the count header does not
/// match the payload length.
pub fn decode_keys(mut data: &[u8]) -> io::Result<Vec<Key>> {
    if data.len() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "missing SOSD count header",
        ));
    }
    let count = data.get_u64_le() as usize;
    if data.len() != count * 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "SOSD header says {count} keys but payload holds {} bytes",
                data.len()
            ),
        ));
    }
    let mut keys = Vec::with_capacity(count);
    for _ in 0..count {
        keys.push(data.get_u64_le());
    }
    Ok(keys)
}

/// Writes keys to `path` in the SOSD binary format.
pub fn save_keys(path: &Path, keys: &[Key]) -> io::Result<()> {
    fs::write(path, encode_keys(keys))
}

/// Loads keys from a SOSD binary file.
pub fn load_keys(path: &Path) -> io::Result<Vec<Key>> {
    let data = fs::read(path)?;
    decode_keys(&data)
}

/// Loads keys from a SOSD binary file and normalises them the way the paper
/// does (sort ascending, drop duplicates) so they can be fed straight into
/// any index's bulk loader.
pub fn load_keys_normalized(path: &Path) -> io::Result<Vec<Key>> {
    let mut keys = load_keys(path)?;
    csv_common::key::normalize_keys(&mut keys);
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Dataset;
    use std::path::PathBuf;

    fn temp_file(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("csv_repro_io_{}_{name}.sosd", std::process::id()));
        path
    }

    #[test]
    fn encode_decode_roundtrip() {
        let keys = Dataset::Genome.generate(10_000, 3);
        let bytes = encode_keys(&keys);
        assert_eq!(bytes.len(), 8 + keys.len() * 8);
        let decoded = decode_keys(&bytes).unwrap();
        assert_eq!(decoded, keys);
        // Empty key sets round-trip too.
        assert_eq!(decode_keys(&encode_keys(&[])).unwrap(), Vec::<Key>::new());
    }

    #[test]
    fn file_roundtrip_and_normalisation() {
        let keys = Dataset::Osm.generate(5_000, 7);
        let path = temp_file("roundtrip");
        save_keys(&path, &keys).unwrap();
        let loaded = load_keys(&path).unwrap();
        assert_eq!(loaded, keys);

        // A file with unsorted duplicates is normalised on load.
        let messy = vec![9u64, 3, 9, 1, 3];
        save_keys(&path, &messy).unwrap();
        let normalized = load_keys_normalized(&path).unwrap();
        assert_eq!(normalized, vec![1, 3, 9]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(decode_keys(&[1, 2, 3]).is_err(), "short header");
        let mut bytes = encode_keys(&[1, 2, 3]).to_vec();
        bytes.truncate(bytes.len() - 4);
        assert!(decode_keys(&bytes).is_err(), "truncated payload");
        let mut bytes = encode_keys(&[1, 2, 3]).to_vec();
        bytes[0] = 99; // header claims 99 keys
        assert!(decode_keys(&bytes).is_err(), "count mismatch");
        assert!(load_keys(Path::new("/nonexistent/csv_repro.sosd")).is_err());
    }

    #[test]
    fn extreme_key_values_survive_the_roundtrip() {
        let keys = vec![0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        let decoded = decode_keys(&encode_keys(&keys)).unwrap();
        assert_eq!(decoded, keys);
    }
}
