//! Workload builders matching the paper's evaluation protocol (§6.1).
//!
//! * **Read-only**: the index is built over the full dataset, CSV is applied,
//!   and point lookups are issued; the paper focuses its measurements on the
//!   keys CSV promoted, so the workload can be restricted to a key subset.
//! * **Read-write**: the index is built over a random half of the dataset,
//!   CSV is applied once, and the other half is inserted in random batches of
//!   `0.1·n`, with lookups after every batch.

use csv_common::rng::{SplitMix64, XorShift64};
use csv_common::Key;

/// How read-only queries are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMix {
    /// Uniformly over all keys of the dataset.
    UniformOverKeys,
    /// Uniformly over a provided subset (e.g. the promoted keys).
    SubsetOnly,
}

/// A read-only workload: a dataset plus a sequence of query keys.
#[derive(Debug, Clone)]
pub struct ReadOnlyWorkload {
    /// The sorted, unique dataset keys.
    pub keys: Vec<Key>,
    /// The lookup sequence.
    pub queries: Vec<Key>,
}

impl ReadOnlyWorkload {
    /// Builds a workload of `num_queries` lookups drawn uniformly from
    /// `keys` (every query is guaranteed to hit an existing key, as in the
    /// paper's query protocol).
    pub fn uniform(keys: Vec<Key>, num_queries: usize, seed: u64) -> Self {
        let mut rng = XorShift64::new(seed);
        let queries = (0..num_queries)
            .map(|_| keys[rng.next_below(keys.len() as u64) as usize])
            .collect();
        Self { keys, queries }
    }

    /// Builds a workload whose queries are drawn uniformly from `subset`.
    pub fn over_subset(keys: Vec<Key>, subset: &[Key], num_queries: usize, seed: u64) -> Self {
        if subset.is_empty() {
            return Self {
                keys,
                queries: Vec::new(),
            };
        }
        let mut rng = XorShift64::new(seed);
        let queries = (0..num_queries)
            .map(|_| subset[rng.next_below(subset.len() as u64) as usize])
            .collect();
        Self { keys, queries }
    }
}

/// A read-write workload: an initial bulk-load half plus insert batches.
#[derive(Debug, Clone)]
pub struct ReadWriteWorkload {
    /// Sorted keys the index is bulk-loaded with (a random half).
    pub initial_keys: Vec<Key>,
    /// Insert batches, each of size `0.1 · n` (last batch may be smaller),
    /// in insertion order (shuffled).
    pub insert_batches: Vec<Vec<Key>>,
    /// Query keys issued after every batch (drawn from the initial half so
    /// results are comparable across batches).
    pub queries: Vec<Key>,
}

impl ReadWriteWorkload {
    /// Splits `keys` into a random half for bulk loading and `num_batches`
    /// insert batches of `batch_fraction · n` keys each, following §6.1's
    /// read-write protocol (`batch_fraction = 0.1`, 5 batches).
    pub fn split(
        keys: &[Key],
        num_batches: usize,
        batch_fraction: f64,
        num_queries: usize,
        seed: u64,
    ) -> Self {
        let n = keys.len();
        let mut rng = SplitMix64::new(seed);
        // Random half selection via a Fisher–Yates-style index shuffle.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let half = n / 2;
        let mut initial: Vec<Key> = order[..half].iter().map(|&i| keys[i]).collect();
        initial.sort_unstable();
        let rest: Vec<Key> = order[half..].iter().map(|&i| keys[i]).collect();

        let batch_size = ((n as f64) * batch_fraction).round() as usize;
        let batch_size = batch_size.max(1);
        let mut insert_batches = Vec::new();
        let mut cursor = 0usize;
        for _ in 0..num_batches {
            if cursor >= rest.len() {
                break;
            }
            let end = (cursor + batch_size).min(rest.len());
            insert_batches.push(rest[cursor..end].to_vec());
            cursor = end;
        }

        let mut qrng = XorShift64::new(seed ^ 0xDEAD_BEEF);
        let queries = (0..num_queries)
            .map(|_| initial[qrng.next_below(initial.len() as u64) as usize])
            .collect();

        Self {
            initial_keys: initial,
            insert_batches,
            queries,
        }
    }

    /// Total number of keys across all insert batches.
    pub fn total_inserts(&self) -> usize {
        self.insert_batches.iter().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Dataset;

    #[test]
    fn uniform_queries_hit_existing_keys() {
        let keys = Dataset::Covid.generate(2_000, 1);
        let wl = ReadOnlyWorkload::uniform(keys.clone(), 500, 9);
        assert_eq!(wl.queries.len(), 500);
        assert!(wl.queries.iter().all(|q| keys.binary_search(q).is_ok()));
    }

    #[test]
    fn subset_queries_stay_in_subset() {
        let keys = Dataset::Facebook.generate(2_000, 1);
        let subset: Vec<Key> = keys.iter().copied().step_by(10).collect();
        let wl = ReadOnlyWorkload::over_subset(keys.clone(), &subset, 300, 5);
        assert!(wl.queries.iter().all(|q| subset.binary_search(q).is_ok()));
        let empty = ReadOnlyWorkload::over_subset(keys, &[], 300, 5);
        assert!(empty.queries.is_empty());
    }

    #[test]
    fn read_write_split_partitions_the_keys() {
        let keys = Dataset::Genome.generate(5_000, 2);
        let wl = ReadWriteWorkload::split(&keys, 5, 0.1, 200, 77);
        assert_eq!(wl.initial_keys.len(), 2_500);
        assert!(wl.initial_keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(wl.insert_batches.len(), 5);
        assert_eq!(wl.total_inserts(), 2_500);
        for batch in &wl.insert_batches {
            assert!(batch.len() <= 500);
            for k in batch {
                assert!(
                    wl.initial_keys.binary_search(k).is_err(),
                    "insert {k} already loaded"
                );
                assert!(keys.binary_search(k).is_ok());
            }
        }
        assert_eq!(wl.queries.len(), 200);
        assert!(wl
            .queries
            .iter()
            .all(|q| wl.initial_keys.binary_search(q).is_ok()));
    }

    #[test]
    fn read_write_split_is_deterministic() {
        let keys = Dataset::Osm.generate(3_000, 4);
        let a = ReadWriteWorkload::split(&keys, 5, 0.1, 100, 1);
        let b = ReadWriteWorkload::split(&keys, 5, 0.1, 100, 1);
        assert_eq!(a.initial_keys, b.initial_keys);
        assert_eq!(a.insert_batches, b.insert_batches);
        let c = ReadWriteWorkload::split(&keys, 5, 0.1, 100, 2);
        assert_ne!(a.initial_keys, c.initial_keys);
    }
}
