//! CDF shape statistics (Fig. 5 of the paper).
//!
//! Fig. 5 plots each dataset's full CDF and a zoomed-in window of a thousand
//! keys starting at the 100-millionth key, showing that the "easy" datasets
//! are near-linear at both scales while the "hard" ones deviate locally.
//! This module computes the numeric counterparts of those plots: the linear
//! fit quality of the full CDF and of zoomed windows.

use csv_common::{Key, LinearModel};
use serde::{Deserialize, Serialize};

/// Linear-fit quality of a key sequence's empirical CDF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdfStats {
    /// Number of keys measured.
    pub n: usize,
    /// Root mean squared rank error of the best single linear fit,
    /// normalised by `n` (0 = perfectly linear CDF, 1 = maximal deviation).
    pub normalized_rmse: f64,
    /// Maximum absolute rank error of the fit, normalised by `n`.
    pub normalized_max_error: f64,
    /// R² of the fit (1 = perfectly linear).
    pub r_squared: f64,
}

impl CdfStats {
    /// Computes the statistics for a sorted key slice.
    pub fn of(keys: &[Key]) -> Self {
        let n = keys.len();
        if n < 2 {
            return Self {
                n,
                normalized_rmse: 0.0,
                normalized_max_error: 0.0,
                r_squared: 1.0,
            };
        }
        let model = LinearModel::fit_cdf(keys);
        let sse = model.sse_cdf(keys);
        let max_err = model.max_abs_error_cdf(keys);
        let mean_rank = (n as f64 - 1.0) / 2.0;
        let syy: f64 = (0..n).map(|i| (i as f64 - mean_rank).powi(2)).sum();
        let r_squared = if syy > 0.0 {
            (1.0 - sse / syy).max(0.0)
        } else {
            1.0
        };
        Self {
            n,
            normalized_rmse: (sse / n as f64).sqrt() / n as f64,
            normalized_max_error: max_err / n as f64,
            r_squared,
        }
    }
}

/// A zoomed-in window of the CDF: `count` consecutive keys starting at a
/// given rank (the paper uses the 100-millionth key and the next thousand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoomedWindow {
    /// Rank of the first key of the window.
    pub start_rank: usize,
    /// Number of keys in the window.
    pub count: usize,
}

impl ZoomedWindow {
    /// The paper's window scaled to a dataset of `n` keys: starts at the
    /// middle of the key space and spans 1000 keys (or fewer for tiny sets).
    pub fn paper_default(n: usize) -> Self {
        let count = 1000.min(n.max(1));
        let start_rank = (n / 2).min(n.saturating_sub(count));
        Self { start_rank, count }
    }

    /// Computes the CDF statistics of this window of `keys`.
    pub fn stats(&self, keys: &[Key]) -> CdfStats {
        let end = (self.start_rank + self.count).min(keys.len());
        let start = self.start_rank.min(end);
        CdfStats::of(&keys[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Dataset;

    #[test]
    fn perfectly_linear_keys_have_zero_error() {
        let keys: Vec<Key> = (0..1000u64).map(|i| i * 17).collect();
        let stats = CdfStats::of(&keys);
        assert!(stats.normalized_rmse < 1e-9);
        assert!(stats.normalized_max_error < 1e-9);
        assert!((stats.r_squared - 1.0).abs() < 1e-9);
        let tiny = CdfStats::of(&[5]);
        assert_eq!(tiny.r_squared, 1.0);
    }

    #[test]
    fn hard_datasets_show_worse_local_linearity() {
        // Fig. 5 (zoomed): Covid stays near-linear locally, Genome deviates.
        let n = 50_000;
        let covid = Dataset::Covid.generate(n, 3);
        let genome = Dataset::Genome.generate(n, 3);
        let window = ZoomedWindow::paper_default(n);
        let covid_local = window.stats(&covid);
        let genome_local = window.stats(&genome);
        assert!(
            covid_local.normalized_rmse <= genome_local.normalized_rmse,
            "covid local rmse {} vs genome {}",
            covid_local.normalized_rmse,
            genome_local.normalized_rmse
        );
    }

    #[test]
    fn window_is_clamped_to_dataset() {
        let keys: Vec<Key> = (0..100).collect();
        let w = ZoomedWindow {
            start_rank: 90,
            count: 1000,
        };
        let stats = w.stats(&keys);
        assert_eq!(stats.n, 10);
        let w = ZoomedWindow::paper_default(100);
        assert!(w.start_rank + w.count <= 100);
    }
}
