//! Down-sampling used by the cardinality sweep (Fig. 9).
//!
//! The paper creates smaller datasets by "eliminating every j-th key from the
//! sorted datasets in order to remove n/j data points". This module applies
//! the same rule so the cardinality experiment preserves the distribution's
//! shape rather than resampling it.

use csv_common::Key;

/// Removes every `j`-th key (1-based positions `j, 2j, 3j, …`), shrinking the
/// dataset by `⌊n / j⌋` keys. `j == 0` returns the input unchanged.
pub fn downsample_every_jth(keys: &[Key], j: usize) -> Vec<Key> {
    if j == 0 {
        return keys.to_vec();
    }
    keys.iter()
        .enumerate()
        .filter(|(i, _)| (i + 1) % j != 0)
        .map(|(_, &k)| k)
        .collect()
}

/// Repeatedly halves a dataset by removing every 2nd key until it reaches (at
/// most) `target` keys, mimicking the 200M → 100M → 50M → 25M → 12.5M chain
/// of Fig. 9. Returns the sequence of datasets from smallest to largest,
/// including the original.
pub fn cardinality_chain(keys: &[Key], steps: usize) -> Vec<Vec<Key>> {
    let mut chain = Vec::with_capacity(steps + 1);
    chain.push(keys.to_vec());
    let mut current = keys.to_vec();
    for _ in 0..steps {
        current = downsample_every_jth(&current, 2);
        chain.push(current.clone());
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_expected_number_of_keys() {
        let keys: Vec<Key> = (0..100).collect();
        let half = downsample_every_jth(&keys, 2);
        assert_eq!(half.len(), 50);
        assert!(half.iter().all(|k| k % 2 == 0));
        let fifth_removed = downsample_every_jth(&keys, 5);
        assert_eq!(fifth_removed.len(), 80);
        assert_eq!(downsample_every_jth(&keys, 0), keys);
        assert_eq!(downsample_every_jth(&keys, 1).len(), 0);
    }

    #[test]
    fn preserves_order_and_uniqueness() {
        let keys: Vec<Key> = (0..1000).map(|i| i * 3 + 1).collect();
        let sampled = downsample_every_jth(&keys, 7);
        assert!(sampled.windows(2).all(|w| w[0] < w[1]));
        assert!(sampled.iter().all(|k| keys.binary_search(k).is_ok()));
    }

    #[test]
    fn chain_produces_halving_sizes() {
        let keys: Vec<Key> = (0..1600).collect();
        let chain = cardinality_chain(&keys, 4);
        assert_eq!(chain.len(), 5);
        let sizes: Vec<usize> = chain.iter().map(|c| c.len()).collect();
        assert_eq!(*sizes.last().unwrap(), 1600);
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "chain must grow: {sizes:?}");
            assert!((w[1] as f64 / w[0] as f64 - 2.0).abs() < 0.1);
        }
    }
}
