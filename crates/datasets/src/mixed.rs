//! YCSB-style mixed-operation workloads.
//!
//! The paper evaluates read-only and batched read-write workloads (§6.1);
//! a downstream user of a learned index usually also cares about steady-state
//! mixes of point lookups, inserts, removals and short range scans (the
//! YCSB A/B/C/E workload shapes). This module generates deterministic
//! operation sequences with a configurable mix and either uniform or Zipfian
//! key popularity, which the `mixed_workload` bench and the
//! `readwrite_workload` example drive against every index in the workspace.

use crate::zipf::Zipfian;
use csv_common::rng::XorShift64;
use csv_common::Key;
use serde::{Deserialize, Serialize};

/// One operation of a mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operation {
    /// Point lookup of a (probably present) key.
    Read(Key),
    /// Insert (or overwrite) of a key.
    Insert(Key),
    /// Removal of a (probably present) key.
    Remove(Key),
    /// Range scan `[lo, hi]`.
    Scan(Key, Key),
}

impl Operation {
    /// A short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Operation::Read(_) => "read",
            Operation::Insert(_) => "insert",
            Operation::Remove(_) => "remove",
            Operation::Scan(_, _) => "scan",
        }
    }
}

/// Ratios of the four operation kinds; they need not sum to 1, the generator
/// normalises them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperationMix {
    /// Share of point lookups.
    pub reads: f64,
    /// Share of inserts.
    pub inserts: f64,
    /// Share of removals.
    pub removes: f64,
    /// Share of range scans.
    pub scans: f64,
}

impl OperationMix {
    /// YCSB-A: 50% reads, 50% updates (modelled as inserts of existing keys).
    pub fn ycsb_a() -> Self {
        Self {
            reads: 0.5,
            inserts: 0.5,
            removes: 0.0,
            scans: 0.0,
        }
    }

    /// YCSB-B: 95% reads, 5% updates.
    pub fn ycsb_b() -> Self {
        Self {
            reads: 0.95,
            inserts: 0.05,
            removes: 0.0,
            scans: 0.0,
        }
    }

    /// YCSB-C: read-only.
    pub fn ycsb_c() -> Self {
        Self {
            reads: 1.0,
            inserts: 0.0,
            removes: 0.0,
            scans: 0.0,
        }
    }

    /// YCSB-E: 95% short scans, 5% inserts.
    pub fn ycsb_e() -> Self {
        Self {
            reads: 0.0,
            inserts: 0.05,
            removes: 0.0,
            scans: 0.95,
        }
    }

    /// A write-heavy mix with deletions, exercising every mutation path.
    pub fn churn() -> Self {
        Self {
            reads: 0.4,
            inserts: 0.3,
            removes: 0.2,
            scans: 0.1,
        }
    }

    fn normalised(&self) -> [f64; 4] {
        let total = (self.reads + self.inserts + self.removes + self.scans).max(f64::MIN_POSITIVE);
        [
            self.reads / total,
            self.inserts / total,
            self.removes / total,
            self.scans / total,
        ]
    }
}

/// How query keys are drawn from the loaded key population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Popularity {
    /// Every loaded key is equally likely.
    Uniform,
    /// Zipfian popularity with the given skew θ (YCSB default: 0.99).
    Zipfian(f64),
}

/// Configuration of a mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedWorkloadSpec {
    /// Number of operations to generate.
    pub num_operations: usize,
    /// Operation mix.
    pub mix: OperationMix,
    /// Key popularity of reads/removes/scan starts.
    pub popularity: Popularity,
    /// Maximum number of keys a scan may cover (the generated `hi` is the key
    /// `scan_width` positions after `lo` in the loaded order).
    pub scan_width: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MixedWorkloadSpec {
    fn default() -> Self {
        Self {
            num_operations: 10_000,
            mix: OperationMix::ycsb_b(),
            popularity: Popularity::Uniform,
            scan_width: 100,
            seed: 42,
        }
    }
}

/// A generated mixed workload.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    /// The sorted keys the index is bulk-loaded with.
    pub loaded_keys: Vec<Key>,
    /// The operation sequence.
    pub operations: Vec<Operation>,
}

impl MixedWorkload {
    /// Generates a workload over `loaded_keys` (sorted, unique). Inserts use
    /// fresh keys drawn from the gaps of the loaded key space so they are
    /// guaranteed not to collide with loaded keys.
    pub fn generate(loaded_keys: &[Key], spec: &MixedWorkloadSpec) -> Self {
        assert!(loaded_keys.len() >= 2, "need at least two loaded keys");
        let mut rng = XorShift64::new(spec.seed);
        let mut zipf = match spec.popularity {
            Popularity::Zipfian(theta) => {
                Some(Zipfian::new(loaded_keys.len(), theta, spec.seed ^ 0xA5A5))
            }
            Popularity::Uniform => None,
        };
        let [p_read, p_insert, p_remove, _p_scan] = spec.mix.normalised();
        let mut operations = Vec::with_capacity(spec.num_operations);
        let mut fresh_counter = 0u64;

        let pick_index = |rng: &mut XorShift64, zipf: &mut Option<Zipfian>| -> usize {
            match zipf {
                Some(z) => {
                    let rank = z.next_rank() as u64;
                    (rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % loaded_keys.len() as u64) as usize
                }
                None => rng.next_below(loaded_keys.len() as u64) as usize,
            }
        };

        for _ in 0..spec.num_operations {
            let dice = rng.next_f64();
            if dice < p_read {
                let i = pick_index(&mut rng, &mut zipf);
                operations.push(Operation::Read(loaded_keys[i]));
            } else if dice < p_read + p_insert {
                // A fresh key strictly between two adjacent loaded keys, when
                // such a gap exists; otherwise fall back to overwriting.
                let i = rng.next_below(loaded_keys.len() as u64 - 1) as usize;
                let (lo, hi) = (loaded_keys[i], loaded_keys[i + 1]);
                let key = if hi > lo + 1 {
                    lo + 1 + (fresh_counter % (hi - lo - 1))
                } else {
                    lo
                };
                fresh_counter += 1;
                operations.push(Operation::Insert(key));
            } else if dice < p_read + p_insert + p_remove {
                let i = pick_index(&mut rng, &mut zipf);
                operations.push(Operation::Remove(loaded_keys[i]));
            } else {
                let i = pick_index(&mut rng, &mut zipf);
                let width = 1 + rng.next_below(spec.scan_width.max(1) as u64) as usize;
                let hi_idx = (i + width).min(loaded_keys.len() - 1);
                operations.push(Operation::Scan(loaded_keys[i], loaded_keys[hi_idx]));
            }
        }
        Self {
            loaded_keys: loaded_keys.to_vec(),
            operations,
        }
    }

    /// Number of operations of each kind, as `(reads, inserts, removes,
    /// scans)`.
    pub fn op_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for op in &self.operations {
            match op {
                Operation::Read(_) => counts.0 += 1,
                Operation::Insert(_) => counts.1 += 1,
                Operation::Remove(_) => counts.2 += 1,
                Operation::Scan(_, _) => counts.3 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Dataset;

    #[test]
    fn mix_ratios_are_respected() {
        let keys = Dataset::Facebook.generate(5_000, 1);
        let spec = MixedWorkloadSpec {
            num_operations: 20_000,
            mix: OperationMix::churn(),
            ..MixedWorkloadSpec::default()
        };
        let wl = MixedWorkload::generate(&keys, &spec);
        assert_eq!(wl.operations.len(), 20_000);
        let (reads, inserts, removes, scans) = wl.op_counts();
        let share = |c: usize| c as f64 / 20_000.0;
        assert!((share(reads) - 0.4).abs() < 0.03, "reads {}", share(reads));
        assert!(
            (share(inserts) - 0.3).abs() < 0.03,
            "inserts {}",
            share(inserts)
        );
        assert!(
            (share(removes) - 0.2).abs() < 0.03,
            "removes {}",
            share(removes)
        );
        assert!((share(scans) - 0.1).abs() < 0.03, "scans {}", share(scans));
    }

    #[test]
    fn ycsb_presets_have_expected_shape() {
        assert_eq!(OperationMix::ycsb_c().normalised(), [1.0, 0.0, 0.0, 0.0]);
        let a = OperationMix::ycsb_a().normalised();
        assert!((a[0] - 0.5).abs() < 1e-12 && (a[1] - 0.5).abs() < 1e-12);
        let e = OperationMix::ycsb_e().normalised();
        assert!(e[3] > 0.9);
        // Degenerate all-zero mixes do not divide by zero.
        let z = OperationMix {
            reads: 0.0,
            inserts: 0.0,
            removes: 0.0,
            scans: 0.0,
        }
        .normalised();
        assert!(z.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn reads_and_scans_reference_loaded_keys() {
        let keys = Dataset::Osm.generate(3_000, 5);
        let spec = MixedWorkloadSpec {
            num_operations: 5_000,
            mix: OperationMix::ycsb_e(),
            scan_width: 50,
            ..MixedWorkloadSpec::default()
        };
        let wl = MixedWorkload::generate(&keys, &spec);
        for op in &wl.operations {
            match op {
                Operation::Read(k) | Operation::Remove(k) => {
                    assert!(keys.binary_search(k).is_ok());
                }
                Operation::Scan(lo, hi) => {
                    assert!(lo <= hi);
                    assert!(keys.binary_search(lo).is_ok());
                    assert!(keys.binary_search(hi).is_ok());
                }
                Operation::Insert(k) => {
                    assert!(*k >= keys[0] && *k <= *keys.last().unwrap());
                }
            }
        }
    }

    #[test]
    fn zipfian_popularity_concentrates_reads() {
        let keys = Dataset::Covid.generate(4_000, 9);
        let spec = |popularity| MixedWorkloadSpec {
            num_operations: 30_000,
            mix: OperationMix::ycsb_c(),
            popularity,
            ..MixedWorkloadSpec::default()
        };
        let distinct = |wl: &MixedWorkload| {
            let mut ks: Vec<Key> = wl
                .operations
                .iter()
                .filter_map(|op| match op {
                    Operation::Read(k) => Some(*k),
                    _ => None,
                })
                .collect();
            ks.sort_unstable();
            ks.dedup();
            ks.len()
        };
        let uniform = MixedWorkload::generate(&keys, &spec(Popularity::Uniform));
        let skewed = MixedWorkload::generate(&keys, &spec(Popularity::Zipfian(0.99)));
        assert!(
            distinct(&skewed) < distinct(&uniform),
            "zipfian reads should touch fewer distinct keys ({} vs {})",
            distinct(&skewed),
            distinct(&uniform)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let keys = Dataset::Genome.generate(2_000, 3);
        let spec = MixedWorkloadSpec::default();
        let a = MixedWorkload::generate(&keys, &spec);
        let b = MixedWorkload::generate(&keys, &spec);
        assert_eq!(a.operations, b.operations);
        let c = MixedWorkload::generate(&keys, &MixedWorkloadSpec { seed: 43, ..spec });
        assert_ne!(a.operations, c.operations);
    }

    #[test]
    fn operation_labels() {
        assert_eq!(Operation::Read(1).label(), "read");
        assert_eq!(Operation::Insert(1).label(), "insert");
        assert_eq!(Operation::Remove(1).label(), "remove");
        assert_eq!(Operation::Scan(1, 2).label(), "scan");
    }
}
