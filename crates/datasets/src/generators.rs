//! Deterministic generators for the four dataset analogues used throughout
//! the evaluation, plus generic distributions for unit tests and ablations.
//!
//! Every generator produces a sorted, de-duplicated `Vec<Key>` of exactly the
//! requested size (matching the paper's de-duplication step for LIPP/SALI),
//! and is fully determined by `(dataset, size, seed)`.

use csv_common::key::normalize_keys;
use csv_common::rng::SplitMix64;
use csv_common::Key;

/// The four dataset analogues of the paper's evaluation (§6.1) plus a
/// uniform control distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Facebook-like user IDs: block-allocated IDs, globally near-linear with
    /// a few dense registration bursts. "Easy" dataset.
    Facebook,
    /// Covid-like tweet IDs: Snowflake-style timestamp-derived IDs, the most
    /// linear CDF of the four. "Easy" dataset.
    Covid,
    /// OSM-like cell IDs: hierarchically clustered spatial cell IDs with
    /// strong local irregularity. "Hard" dataset.
    Osm,
    /// Genome-like loci: bursty dense runs separated by heavy-tailed jumps.
    /// "Hard" dataset.
    Genome,
    /// Uniform random keys over the full 63-bit range (control).
    Uniform,
}

impl Dataset {
    /// All four paper datasets, in the order the paper lists them.
    pub fn paper_datasets() -> [Dataset; 4] {
        [
            Dataset::Facebook,
            Dataset::Covid,
            Dataset::Osm,
            Dataset::Genome,
        ]
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Facebook => "Facebook",
            Dataset::Covid => "Covid",
            Dataset::Osm => "OSM",
            Dataset::Genome => "Genome",
            Dataset::Uniform => "Uniform",
        }
    }

    /// Whether the paper classifies the dataset as hard to learn.
    pub fn is_hard(&self) -> bool {
        matches!(self, Dataset::Osm | Dataset::Genome)
    }

    /// Generates `n` sorted, unique keys with the given seed.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Key> {
        DatasetSpec::new(*self, n, seed).generate()
    }
}

/// A fully specified dataset instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatasetSpec {
    /// Which distribution to draw from.
    pub dataset: Dataset,
    /// Number of keys to produce.
    pub size: usize,
    /// RNG seed; the same spec always produces the same keys.
    pub seed: u64,
}

impl DatasetSpec {
    /// Creates a spec.
    pub fn new(dataset: Dataset, size: usize, seed: u64) -> Self {
        Self {
            dataset,
            size,
            seed,
        }
    }

    /// Generates the keys: sorted, unique, exactly `size` of them (the
    /// generators oversample and truncate to absorb duplicate collisions).
    pub fn generate(&self) -> Vec<Key> {
        let n = self.size;
        if n == 0 {
            return Vec::new();
        }
        let mut keys: Vec<Key> = Vec::with_capacity(n + n / 8 + 16);
        let mut rng = SplitMix64::new(self.seed ^ dataset_salt(self.dataset));
        let mut attempt = 0u32;
        loop {
            let target = n + n / 8 + 16;
            match self.dataset {
                Dataset::Facebook => facebook_like(&mut rng, target, &mut keys),
                Dataset::Covid => covid_like(&mut rng, target, &mut keys),
                Dataset::Osm => osm_like(&mut rng, target, &mut keys),
                Dataset::Genome => genome_like(&mut rng, target, &mut keys),
                Dataset::Uniform => uniform(&mut rng, target, &mut keys),
            }
            normalize_keys(&mut keys);
            if keys.len() >= n || attempt > 4 {
                break;
            }
            attempt += 1;
        }
        keys.truncate(n);
        keys
    }
}

fn dataset_salt(d: Dataset) -> u64 {
    match d {
        Dataset::Facebook => 0xFACE_B00C,
        Dataset::Covid => 0xC0_71D,
        Dataset::Osm => 0x05_1234,
        Dataset::Genome => 0x6E_0E,
        Dataset::Uniform => 0x0,
    }
}

/// Facebook-like IDs: the bulk of keys are spread over large, uniformly
/// allocated ID blocks, with ~15 % of keys concentrated in a handful of
/// dense "registration burst" blocks. Globally near-linear, locally mildly
/// irregular.
fn facebook_like(rng: &mut SplitMix64, n: usize, out: &mut Vec<Key>) {
    out.clear();
    let span: u64 = (n as u64).saturating_mul(1_000).max(1 << 20);
    let num_bursts = 8 + (n / 100_000);
    let burst_keys = n * 15 / 100;
    let uniform_keys = n - burst_keys;
    for _ in 0..uniform_keys {
        out.push(rng.next_below(span));
    }
    for _ in 0..num_bursts.max(1) {
        let center = rng.next_below(span);
        let width = 1 + rng.next_below((span / (n as u64 * 4)).max(8));
        let per_burst = burst_keys / num_bursts.max(1) + 1;
        for _ in 0..per_burst {
            out.push(center.saturating_add(rng.next_below(width.max(1) * per_burst as u64)));
        }
    }
}

/// Covid-like tweet IDs: Snowflake IDs are `timestamp << 22 | worker | seq`;
/// sampling tweets over a time window yields an almost perfectly linear CDF
/// with small per-millisecond jitter.
fn covid_like(rng: &mut SplitMix64, n: usize, out: &mut Vec<Key>) {
    out.clear();
    let mut ts: u64 = 1_300_000_000_000; // epoch-millis-like origin
    for _ in 0..n {
        // Advance by 1–4 ms between sampled tweets.
        ts += 1 + rng.next_below(4);
        let worker = rng.next_below(32);
        let seq = rng.next_below(16);
        out.push((ts << 9) | (worker << 4) | seq);
    }
}

/// OSM-like cell IDs: three-level cluster hierarchy (continent → city →
/// street) over the 62-bit cell-ID space, with widely varying densities.
/// Produces strong local non-linearity, like S2-cell-mapped coordinates.
fn osm_like(rng: &mut SplitMix64, n: usize, out: &mut Vec<Key>) {
    out.clear();
    let space: u64 = 1 << 56;
    let l1 = 12usize;
    let l2_per_l1 = 24usize;
    // Pre-draw the cluster centres.
    let mut centres: Vec<(u64, u64)> = Vec::new(); // (centre, spread)
    for _ in 0..l1 {
        let c1 = rng.next_below(space);
        let spread1 = space / (64 + rng.next_below(192));
        for _ in 0..l2_per_l1 {
            let c2 = c1.saturating_add(rng.next_below(spread1.max(1)));
            // Street-level spread varies over four orders of magnitude.
            let exp = 8 + rng.next_below(20);
            let spread2 = 1u64 << exp;
            centres.push((c2, spread2));
        }
    }
    // Zipf-ish popularity: cluster i receives weight ∝ 1/(i+1).
    let total_weight: f64 = (0..centres.len()).map(|i| 1.0 / (i + 1) as f64).sum();
    for (i, &(centre, spread)) in centres.iter().enumerate() {
        let weight = (1.0 / (i + 1) as f64) / total_weight;
        let count = ((n as f64) * weight).ceil() as usize;
        for _ in 0..count {
            out.push(centre.saturating_add(rng.next_below(spread)));
        }
        if out.len() >= n {
            break;
        }
    }
    while out.len() < n {
        out.push(rng.next_below(space));
    }
}

/// Genome-like loci: dense runs of nearly consecutive positions (contact
/// regions) separated by heavy-tailed jumps, mimicking loci-pair encodings.
fn genome_like(rng: &mut SplitMix64, n: usize, out: &mut Vec<Key>) {
    out.clear();
    let mut cursor: u64 = 10_000;
    while out.len() < n {
        // Run length: 16–4096 loci.
        let run_len = 16 + rng.next_below(4080) as usize;
        let stride = 1 + rng.next_below(4);
        for _ in 0..run_len.min(n - out.len()) {
            cursor = cursor.saturating_add(stride + rng.next_below(2));
            out.push(cursor);
        }
        // Heavy-tailed jump between runs: 2^10 .. 2^34.
        let exp = 10 + rng.next_below(25);
        cursor = cursor
            .saturating_add(1u64 << exp)
            .saturating_add(rng.next_below(1 << 10));
    }
}

/// Uniform random keys over `[0, 2^62)`.
fn uniform(rng: &mut SplitMix64, n: usize, out: &mut Vec<Key>) {
    out.clear();
    for _ in 0..n {
        out.push(rng.next_below(1 << 62));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_common::key::is_strictly_increasing;
    use csv_common::LinearModel;

    #[test]
    fn generators_produce_requested_sizes() {
        for dataset in [
            Dataset::Facebook,
            Dataset::Covid,
            Dataset::Osm,
            Dataset::Genome,
            Dataset::Uniform,
        ] {
            for &n in &[0usize, 1, 100, 10_000] {
                let keys = dataset.generate(n, 42);
                assert_eq!(keys.len(), n, "{dataset:?} size {n}");
                assert!(
                    is_strictly_increasing(&keys),
                    "{dataset:?} not sorted/unique"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for dataset in Dataset::paper_datasets() {
            let a = dataset.generate(5_000, 7);
            let b = dataset.generate(5_000, 7);
            let c = dataset.generate(5_000, 8);
            assert_eq!(a, b);
            assert_ne!(a, c, "{dataset:?} ignores the seed");
        }
    }

    #[test]
    fn easy_datasets_fit_better_than_hard_ones() {
        // The substitution fidelity check: relative SSE of a single linear
        // model (normalised by n²·n, i.e. mean squared relative rank error)
        // must be markedly smaller for Facebook/Covid than for OSM/Genome.
        let n = 20_000usize;
        let fit_quality = |d: Dataset| -> f64 {
            let keys = d.generate(n, 11);
            let model = LinearModel::fit_cdf(&keys);
            model.sse_cdf(&keys) / (n as f64 * n as f64 * n as f64)
        };
        let facebook = fit_quality(Dataset::Facebook);
        let covid = fit_quality(Dataset::Covid);
        let osm = fit_quality(Dataset::Osm);
        let genome = fit_quality(Dataset::Genome);
        assert!(covid < osm, "covid {covid} vs osm {osm}");
        assert!(covid < genome, "covid {covid} vs genome {genome}");
        assert!(facebook < osm, "facebook {facebook} vs osm {osm}");
        assert!(facebook < genome, "facebook {facebook} vs genome {genome}");
    }

    #[test]
    fn names_and_classification() {
        assert_eq!(Dataset::Facebook.name(), "Facebook");
        assert_eq!(Dataset::Osm.name(), "OSM");
        assert!(Dataset::Osm.is_hard());
        assert!(Dataset::Genome.is_hard());
        assert!(!Dataset::Covid.is_hard());
        assert!(!Dataset::Facebook.is_hard());
        assert_eq!(Dataset::paper_datasets().len(), 4);
    }
}
