//! The SALI index: a LIPP base structure plus probability-driven flattening
//! of hot sub-trees into ε-bounded segment regions.

use core::ops::ControlFlow;
use csv_common::metrics::CostCounters;
use csv_common::pla::{locate_segment, Segment, SegmentationBuilder};
use csv_common::traits::{
    IndexStats, LearnedIndex, LevelHistogram, RangeIndex, RemovableIndex, SnapshotIndex,
};
use csv_common::{binary_search_bounded, Key, KeyValue, Value};
use csv_core::cost::SubtreeCostStats;
use csv_core::csv::{CsvIntegrable, SubtreeRef};
use csv_core::layout::SmoothedLayout;
use csv_lipp::LippIndex;

/// Tuning knobs for SALI's workload-driven flattening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaliConfig {
    /// A level-2 sub-tree is flattened when its share of the sampled
    /// workload exceeds this probability.
    pub hot_probability: f64,
    /// Error bound of the flattened regions' segmentation.
    pub epsilon: usize,
    /// Never flatten sub-trees with fewer keys than this (the traversal
    /// saving would be negligible).
    pub min_region_keys: usize,
}

impl Default for SaliConfig {
    fn default() -> Self {
        Self {
            hot_probability: 0.01,
            epsilon: 16,
            min_region_keys: 256,
        }
    }
}

/// A flattened (hot) key region: the records of one former sub-tree stored
/// contiguously and indexed by an ε-bounded segmentation.
#[derive(Debug, Clone)]
pub struct FlatRegion {
    /// Smallest key covered by the region.
    pub min_key: Key,
    /// Largest key covered by the region.
    pub max_key: Key,
    keys: Vec<Key>,
    values: Vec<Value>,
    segments: Vec<Segment>,
    epsilon: usize,
}

impl FlatRegion {
    fn build(records: &[KeyValue], epsilon: usize) -> Self {
        let keys: Vec<Key> = records.iter().map(|r| r.key).collect();
        let values: Vec<Value> = records.iter().map(|r| r.value).collect();
        let segments = SegmentationBuilder::new(epsilon).build(&keys);
        Self {
            min_key: keys[0],
            max_key: *keys.last().unwrap(),
            keys,
            values,
            segments,
            epsilon,
        }
    }

    /// Number of records in the region.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the region is empty (never the case for built regions).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of segments in the region's PLA.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Issues a cache prefetch for the centre of the ±ε window `get` will
    /// binary-search for `key`, without resolving the lookup.
    fn prefetch(&self, key: Key) {
        let predicted = locate_segment(&self.segments, key).predict(key);
        csv_common::prefetch_slice_at(&self.keys, predicted.min(self.keys.len()));
    }

    fn get(&self, key: Key, counters: Option<&mut CostCounters>) -> Option<Value> {
        let seg = locate_segment(&self.segments, key);
        let predicted = seg.predict(key);
        let lo = predicted.saturating_sub(self.epsilon);
        let hi = (predicted + self.epsilon + 1).min(self.keys.len());
        let out = binary_search_bounded(&self.keys, key, lo, hi);
        if let Some(c) = counters {
            c.nodes_visited += 1;
            c.model_evals += 1;
            c.comparisons += out.comparisons + (self.segments.len().max(1)).ilog2() as usize;
        }
        if out.found {
            Some(self.values[out.position])
        } else {
            None
        }
    }

    fn insert(&mut self, key: Key, value: Value) -> bool {
        match self.keys.binary_search(&key) {
            Ok(i) => {
                self.values[i] = value;
                false
            }
            Err(i) => {
                self.keys.insert(i, key);
                self.values.insert(i, value);
                // Re-segment lazily: the PLA stays valid only for positions,
                // so rebuild it (regions are small and inserts into hot
                // read-mostly regions are rare in the paper's workloads).
                self.segments = SegmentationBuilder::new(self.epsilon).build(&self.keys);
                self.min_key = self.keys[0];
                self.max_key = *self.keys.last().unwrap();
                true
            }
        }
    }

    /// Removes `key` from the region snapshot (the base structure stays
    /// authoritative). Returns `true` when the key was present.
    fn remove(&mut self, key: Key) -> bool {
        match self.keys.binary_search(&key) {
            Ok(i) => {
                self.keys.remove(i);
                self.values.remove(i);
                if !self.keys.is_empty() {
                    self.segments = SegmentationBuilder::new(self.epsilon).build(&self.keys);
                    self.min_key = self.keys[0];
                    self.max_key = *self.keys.last().unwrap();
                }
                true
            }
            Err(_) => false,
        }
    }

    fn size_bytes(&self) -> usize {
        self.keys.len() * 16 + self.segments.len() * std::mem::size_of::<Segment>() + 64
    }
}

/// The SALI learned index.
#[derive(Debug, Clone)]
pub struct SaliIndex {
    lipp: LippIndex,
    regions: Vec<FlatRegion>,
    config: SaliConfig,
}

impl SaliIndex {
    /// Builds SALI with a custom configuration.
    pub fn with_config(records: &[KeyValue], config: SaliConfig) -> Self {
        Self {
            lipp: LippIndex::bulk_load(records),
            regions: Vec::new(),
            config,
        }
    }

    /// The LIPP base structure (read-only access for diagnostics).
    pub fn base(&self) -> &LippIndex {
        &self.lipp
    }

    /// Currently flattened hot regions.
    pub fn regions(&self) -> &[FlatRegion] {
        &self.regions
    }

    /// Estimates per-sub-tree access probabilities from a sample workload and
    /// flattens every sub-tree whose probability exceeds the configured
    /// threshold. Returns the number of regions created.
    pub fn optimize_for_workload(&mut self, sample_queries: &[Key]) -> usize {
        if sample_queries.is_empty() {
            return 0;
        }
        // Candidate sub-trees: level-2 nodes of the LIPP base (the same
        // granularity the CSV paper uses for LIPP/SALI).
        let subtrees = self.lipp.csv_subtrees_at_level(2);
        if subtrees.is_empty() {
            return 0;
        }
        // Key range of each candidate sub-tree.
        let mut ranges: Vec<(Key, Key, SubtreeRef)> = Vec::new();
        for st in subtrees {
            let keys = self.lipp.csv_collect_keys(&st);
            if keys.len() >= self.config.min_region_keys {
                ranges.push((keys[0], *keys.last().unwrap(), st));
            }
        }
        if ranges.is_empty() {
            return 0;
        }
        ranges.sort_by_key(|r| r.0);
        // Count sample hits per range.
        let mut hits = vec![0usize; ranges.len()];
        for &q in sample_queries {
            let idx = ranges.partition_point(|r| r.0 <= q);
            if idx > 0 && q <= ranges[idx - 1].1 {
                hits[idx - 1] += 1;
            }
        }
        let total = sample_queries.len() as f64;
        let mut created = 0usize;
        for (i, (min_key, max_key, st)) in ranges.iter().enumerate() {
            let probability = hits[i] as f64 / total;
            if probability < self.config.hot_probability {
                continue;
            }
            if self.region_for(*min_key).is_some() || self.region_for(*max_key).is_some() {
                continue; // already covered by an earlier flattening
            }
            let keys = self.lipp.csv_collect_keys(st);
            let records: Vec<KeyValue> = keys
                .iter()
                .map(|&k| KeyValue::new(k, self.lipp.get(k).expect("key collected from the index")))
                .collect();
            self.regions
                .push(FlatRegion::build(&records, self.config.epsilon));
            created += 1;
        }
        self.regions.sort_by_key(|r| r.min_key);
        created
    }

    fn region_for(&self, key: Key) -> Option<usize> {
        let idx = self.regions.partition_point(|r| r.min_key <= key);
        if idx > 0 && key <= self.regions[idx - 1].max_key {
            Some(idx - 1)
        } else {
            None
        }
    }
}

impl LearnedIndex for SaliIndex {
    fn name(&self) -> &'static str {
        "SALI"
    }

    fn bulk_load(records: &[KeyValue]) -> Self {
        Self::with_config(records, SaliConfig::default())
    }

    fn get(&self, key: Key) -> Option<Value> {
        if let Some(r) = self.region_for(key) {
            if let Some(v) = self.regions[r].get(key, None) {
                return Some(v);
            }
            // The base structure is authoritative; fall through for keys the
            // region snapshot does not know about.
        }
        self.lipp.get(key)
    }

    fn get_counted(&self, key: Key, counters: &mut CostCounters) -> Option<Value> {
        if let Some(r) = self.region_for(key) {
            counters.nodes_visited += 1; // root routing into the flat region
            if let Some(v) = self.regions[r].get(key, Some(counters)) {
                return Some(v);
            }
        }
        self.lipp.get_counted(key, counters)
    }

    fn insert(&mut self, key: Key, value: Value) -> bool {
        // Keep the base structure authoritative; mirror into every flattened
        // region whose key range covers the key so hot-path lookups stay
        // consistent.
        let new = self.lipp.insert(key, value);
        for region in &mut self.regions {
            if key >= region.min_key && key <= region.max_key {
                region.insert(key, value);
            }
        }
        new
    }

    fn len(&self) -> usize {
        self.lipp.len()
    }

    fn stats(&self) -> IndexStats {
        let base = self.lipp.stats();
        if self.regions.is_empty() {
            return base;
        }
        // Keys inside flattened regions are reached at level 2 (root →
        // region) regardless of their depth in the base structure.
        let mut histogram = LevelHistogram::new();
        let mut flat_keys = 0usize;
        for region in &self.regions {
            flat_keys += region.len();
        }
        histogram.record(2, flat_keys);
        // Remaining keys keep their base levels. We approximate by removing
        // flattened keys proportionally from the deepest levels first, which
        // matches the fact that flattening targets deep sub-trees.
        let mut remaining = flat_keys;
        for (level, count) in base
            .level_histogram
            .iter()
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
        {
            let take = remaining.min(count);
            let keep = count - take;
            remaining -= take;
            if keep > 0 {
                histogram.record(level, keep);
            }
        }
        let region_bytes: usize = self.regions.iter().map(|r| r.size_bytes()).sum();
        IndexStats {
            level_histogram: histogram,
            node_count: base.node_count + self.regions.len(),
            deep_node_count: base.deep_node_count,
            height: base.height,
            size_bytes: base.size_bytes + region_bytes,
            num_keys: base.num_keys,
        }
    }

    fn level_of_key(&self, key: Key) -> Option<usize> {
        if let Some(r) = self.region_for(key) {
            if self.regions[r].get(key, None).is_some() {
                return Some(2);
            }
        }
        self.lipp.level_of_key(key)
    }

    fn prefetch_key(&self, key: Key) {
        // Hot keys resolve inside a flattened region: prefetch the centre of
        // the ±ε window its segmentation predicts. Cold keys go to the LIPP
        // base, which prefetches its predicted slot.
        if let Some(r) = self.region_for(key) {
            self.regions[r].prefetch(key);
        } else {
            self.lipp.prefetch_key(key);
        }
    }
}

impl RangeIndex for SaliIndex {
    fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        // The LIPP base is authoritative for range scans: flattened regions
        // are read-optimised snapshots for point lookups only.
        self.lipp.range(lo, hi)
    }

    fn range_visit(
        &self,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.lipp.range_visit(lo, hi, f)
    }
}

/// Snapshot audit: `derive(Clone)` deep-copies the LIPP base (itself a
/// [`SnapshotIndex`]) and the flat-region side structures (each region owns
/// its PLA segments and key/value arrays). Access counters live inside the
/// cloned arenas as plain integers — not atomics or `Cell`s — so clone and
/// original evolve independently.
impl SnapshotIndex for SaliIndex {}

impl RemovableIndex for SaliIndex {
    fn remove(&mut self, key: Key) -> Option<Value> {
        let removed = self.lipp.remove(key);
        if removed.is_some() {
            for region in &mut self.regions {
                if key >= region.min_key && key <= region.max_key {
                    region.remove(key);
                }
            }
            // Drop regions that lost their last record.
            self.regions.retain(|r| !r.is_empty());
        }
        removed
    }
}

impl CsvIntegrable for SaliIndex {
    fn csv_tracks_dirty(&self) -> bool {
        self.lipp.csv_tracks_dirty()
    }

    fn csv_dirty_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
        // Flat regions are read-optimised snapshots; the LIPP base stays
        // authoritative for structure, so its dirty marks are SALI's.
        self.lipp.csv_dirty_subtrees_at_level(level)
    }

    fn csv_mark_clean(&mut self) {
        self.lipp.csv_mark_clean()
    }

    fn csv_max_level(&self) -> usize {
        self.lipp.csv_max_level()
    }

    fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
        self.lipp.csv_subtrees_at_level(level)
    }

    fn csv_collect_keys_into(&self, subtree: &SubtreeRef, buf: &mut Vec<Key>) {
        self.lipp.csv_collect_keys_into(subtree, buf)
    }

    fn csv_subtree_cost(&self, subtree: &SubtreeRef) -> SubtreeCostStats {
        self.lipp.csv_subtree_cost(subtree)
    }

    fn csv_rebuild_subtree(
        &mut self,
        subtree: &SubtreeRef,
        layout: &SmoothedLayout,
    ) -> Result<(), csv_core::csv::RebuildRefusal> {
        self.lipp.csv_rebuild_subtree(subtree, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_common::key::identity_records;
    use csv_core::{CsvConfig, CsvOptimizer};

    /// Fractal keys (see the LIPP tests) so the base structure is deep.
    fn hard_keys(n: u64) -> Vec<Key> {
        let mut keys = Vec::new();
        let mut super_base = 1_000u64;
        let mut sb = 0u64;
        'outer: loop {
            let mut block_base = super_base;
            for b in 0..24u64 {
                let run = 16 + ((sb * 7 + b * 13) % 48);
                let stride = 1 + ((b * 5 + sb) % 7);
                for i in 0..run {
                    keys.push(block_base + i * stride);
                    if keys.len() as u64 >= n {
                        break 'outer;
                    }
                }
                block_base += run * stride + 100_000 * (1 + (b % 5));
            }
            super_base = block_base + 3_000_000_000 * (1 + sb % 3);
            sb += 1;
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    #[test]
    fn behaves_like_lipp_before_optimisation() {
        let keys = hard_keys(20_000);
        let sali = SaliIndex::bulk_load(&identity_records(&keys));
        assert_eq!(sali.name(), "SALI");
        assert_eq!(sali.len(), keys.len());
        assert!(sali.regions().is_empty());
        for &k in keys.iter().step_by(77) {
            assert_eq!(sali.get(k), Some(k));
            assert_eq!(sali.level_of_key(k), sali.base().level_of_key(k));
        }
    }

    #[test]
    fn hot_subtrees_get_flattened_and_answers_stay_correct() {
        let keys = hard_keys(40_000);
        let mut sali = SaliIndex::bulk_load(&identity_records(&keys));
        // A skewed workload hammering the first third of the key space.
        let hot: Vec<Key> = keys.iter().copied().take(keys.len() / 3).collect();
        let created = sali.optimize_for_workload(&hot);
        assert!(
            created > 0,
            "a heavily skewed workload must flatten something"
        );
        assert!(!sali.regions().is_empty());
        for &k in keys.iter().step_by(101) {
            assert_eq!(sali.get(k), Some(k));
        }
        // Keys inside flattened regions are now answered at level 2.
        let region = &sali.regions()[0];
        assert!(region.num_segments() >= 1);
        let covered = keys
            .iter()
            .find(|&&k| k >= region.min_key && k <= region.max_key)
            .copied()
            .unwrap();
        assert_eq!(sali.level_of_key(covered), Some(2));
    }

    #[test]
    fn flattening_adds_a_search_step() {
        let keys = hard_keys(40_000);
        let mut sali = SaliIndex::bulk_load(&identity_records(&keys));
        let hot: Vec<Key> = keys.iter().copied().take(keys.len() / 4).collect();
        sali.optimize_for_workload(&hot);
        assert!(!sali.regions().is_empty());
        let region_key = {
            let r = &sali.regions()[0];
            keys.iter()
                .copied()
                .find(|&k| k >= r.min_key && k <= r.max_key)
                .unwrap()
        };
        let mut counters = CostCounters::new();
        assert_eq!(
            sali.get_counted(region_key, &mut counters),
            Some(region_key)
        );
        // Traversal is short (root + region) but there is a real search cost.
        assert!(counters.nodes_visited <= 2);
        assert!(
            counters.comparisons >= 1,
            "flattened regions pay a segment search"
        );
    }

    #[test]
    fn uniform_workloads_flatten_nothing() {
        let keys = hard_keys(30_000);
        let mut sali = SaliIndex::with_config(
            &identity_records(&keys),
            SaliConfig {
                hot_probability: 0.9,
                ..SaliConfig::default()
            },
        );
        let created = sali.optimize_for_workload(&keys);
        assert_eq!(
            created, 0,
            "no sub-tree concentrates 90% of a uniform workload"
        );
    }

    #[test]
    fn inserts_stay_visible_in_flattened_regions() {
        let keys = hard_keys(30_000);
        let mut sali = SaliIndex::bulk_load(&identity_records(&keys));
        let hot: Vec<Key> = keys.iter().copied().take(keys.len() / 3).collect();
        sali.optimize_for_workload(&hot);
        assert!(!sali.regions().is_empty());
        let (min_key, max_key) = (sali.regions()[0].min_key, sali.regions()[0].max_key);
        // Insert a brand-new key inside the flattened range.
        let mut candidate = min_key + 1;
        while sali.get(candidate).is_some() && candidate < max_key {
            candidate += 1;
        }
        assert!(candidate < max_key);
        assert!(sali.insert(candidate, 4242));
        assert_eq!(sali.get(candidate), Some(4242));
        assert_eq!(sali.len(), keys.len() + 1);
        // Overwrites are visible through the region too.
        assert!(!sali.insert(candidate, 4343));
        assert_eq!(sali.get(candidate), Some(4343));
    }

    #[test]
    fn csv_applies_to_the_base_structure() {
        let keys = hard_keys(40_000);
        let mut sali = SaliIndex::bulk_load(&identity_records(&keys));
        let before = sali.stats();
        let report = CsvOptimizer::new(CsvConfig::for_sali(0.2)).optimize(&mut sali);
        let after = sali.stats();
        assert!(report.subtrees_rebuilt > 0);
        assert!(after.mean_key_level() <= before.mean_key_level() + 1e-9);
        for &k in keys.iter().step_by(173) {
            assert_eq!(sali.get(k), Some(k));
        }
    }

    #[test]
    fn dirty_tracking_delegates_to_the_base_structure() {
        let keys = hard_keys(20_000);
        let mut sali = SaliIndex::bulk_load(&identity_records(&keys));
        assert!(sali.csv_tracks_dirty());
        // Fully dirty when fresh, clean after csv_mark_clean, re-dirtied by
        // writes — all through the LIPP base.
        assert_eq!(
            sali.csv_dirty_subtrees_at_level(2).len(),
            sali.csv_subtrees_at_level(2).len()
        );
        sali.csv_mark_clean();
        assert!(sali.csv_dirty_subtrees_at_level(2).is_empty());
        let deep = keys
            .iter()
            .copied()
            .find(|&k| sali.level_of_key(k).unwrap_or(1) >= 3)
            .expect("hard keys produce deep levels");
        assert_eq!(sali.remove(deep), Some(deep));
        assert_eq!(sali.csv_dirty_subtrees_at_level(2).len(), 1);
    }

    #[test]
    fn range_scans_match_the_base_structure() {
        let keys = hard_keys(30_000);
        let mut sali = SaliIndex::bulk_load(&identity_records(&keys));
        let hot: Vec<Key> = keys.iter().copied().take(keys.len() / 3).collect();
        sali.optimize_for_workload(&hot);
        let lo = keys[100];
        let hi = keys[5_000];
        let got = sali.range(lo, hi);
        let expected: Vec<Key> = keys
            .iter()
            .copied()
            .filter(|&k| k >= lo && k <= hi)
            .collect();
        assert_eq!(got.iter().map(|r| r.key).collect::<Vec<_>>(), expected);
        assert_eq!(sali.range(0, u64::MAX).len(), keys.len());
        assert!(sali.range(9, 3).is_empty());
    }

    #[test]
    fn removals_stay_consistent_with_flattened_regions() {
        let keys = hard_keys(30_000);
        let mut sali = SaliIndex::bulk_load(&identity_records(&keys));
        let hot: Vec<Key> = keys.iter().copied().take(keys.len() / 3).collect();
        sali.optimize_for_workload(&hot);
        assert!(!sali.regions().is_empty());
        // Remove keys both inside and outside the flattened ranges.
        let inside = {
            let r = &sali.regions()[0];
            keys.iter()
                .copied()
                .find(|&k| k >= r.min_key && k <= r.max_key)
                .unwrap()
        };
        let outside = *keys.last().unwrap();
        assert_eq!(sali.remove(inside), Some(inside));
        assert_eq!(
            sali.get(inside),
            None,
            "removed key must not resurface via a region"
        );
        assert_eq!(sali.remove(inside), None);
        assert_eq!(sali.remove(outside), Some(outside));
        assert_eq!(sali.get(outside), None);
        assert_eq!(sali.len(), keys.len() - 2);
        // Re-insert restores visibility everywhere.
        assert!(sali.insert(inside, 777));
        assert_eq!(sali.get(inside), Some(777));
    }

    #[test]
    fn stats_account_for_regions() {
        let keys = hard_keys(30_000);
        let mut sali = SaliIndex::bulk_load(&identity_records(&keys));
        let hot: Vec<Key> = keys.iter().copied().take(keys.len() / 3).collect();
        sali.optimize_for_workload(&hot);
        let stats = sali.stats();
        assert_eq!(stats.num_keys, keys.len());
        assert_eq!(stats.level_histogram.total(), keys.len());
        assert!(stats.node_count >= sali.base().stats().node_count);
        assert!(stats.size_bytes > sali.base().stats().size_bytes);
    }
}
