//! A reproduction of **SALI** — the *Scalable Adaptive Learned Index with
//! probability models* [Ge et al., SIGMOD/PACMMOD 2023] — built, as in the
//! original, on top of the LIPP structure, plus the CSV integration hooks.
//!
//! SALI augments LIPP with workload awareness: it tracks how frequently each
//! sub-tree is accessed, estimates access probabilities from a query sample,
//! and *flattens* the hottest sub-trees into PGM-style ε-bounded segment
//! arrays. Flattening removes traversal levels for hot keys at the price of
//! an extra segment-search step — exactly the trade-off the CSV paper
//! discusses (§2.2) and the reason CSV's virtual-point smoothing also helps
//! SALI: smoothed sub-trees need fewer levels in the first place.
//!
//! Reproduction scope: the probability-driven flattening and the LIPP base
//! structure are implemented; SALI's concurrency machinery and
//! insert-probability node layouts are out of scope (the CSV paper's
//! evaluation is single-threaded and reports SALI behaving like LIPP).

#![forbid(unsafe_code)]

mod index;

pub use index::{FlatRegion, SaliConfig, SaliIndex};

#[cfg(test)]
mod proptests {
    use super::SaliIndex;
    use csv_common::key::identity_records;
    use csv_common::traits::LearnedIndex;
    use csv_core::{CsvConfig, CsvOptimizer};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Lookups (with and without flattening) match a sorted-vec oracle.
        #[test]
        fn lookup_matches_oracle(mut keys in prop::collection::vec(0u64..2_000_000, 1..400)) {
            keys.sort_unstable();
            keys.dedup();
            let mut index = SaliIndex::bulk_load(&identity_records(&keys));
            // Optimise for a workload that touches every key once.
            index.optimize_for_workload(&keys);
            prop_assert_eq!(index.len(), keys.len());
            for &k in &keys {
                prop_assert_eq!(index.get(k), Some(k));
            }
            for probe in [1u64, 999_999, 1_999_999] {
                let expected = keys.binary_search(&probe).is_ok();
                prop_assert_eq!(index.get(probe).is_some(), expected);
            }
        }

        /// Inserts after flattening stay consistent with a BTreeMap oracle.
        #[test]
        fn inserts_match_btreemap(
            mut base in prop::collection::vec(0u64..500_000, 10..200),
            extra in prop::collection::vec((0u64..500_000, 0u64..100), 0..150),
        ) {
            base.sort_unstable();
            base.dedup();
            let mut index = SaliIndex::bulk_load(&identity_records(&base));
            index.optimize_for_workload(&base);
            let mut oracle: std::collections::BTreeMap<u64, u64> =
                base.iter().map(|&k| (k, k)).collect();
            for (k, v) in extra {
                index.insert(k, v);
                oracle.insert(k, v);
            }
            prop_assert_eq!(index.len(), oracle.len());
            for (&k, &v) in &oracle {
                prop_assert_eq!(index.get(k), Some(v));
            }
        }

        /// CSV optimisation preserves answers on SALI as well.
        #[test]
        fn csv_preserves_answers(mut keys in prop::collection::vec(0u64..3_000_000, 50..300)) {
            keys.sort_unstable();
            keys.dedup();
            let mut index = SaliIndex::bulk_load(&identity_records(&keys));
            CsvOptimizer::new(CsvConfig::for_sali(0.2)).optimize(&mut index);
            for &k in &keys {
                prop_assert_eq!(index.get(k), Some(k));
            }
            prop_assert_eq!(index.len(), keys.len());
        }
    }
}
