//! Crash-recovery property tests: random operation sequences, a simulated
//! kill at an arbitrary write boundary (fault-injected WAL damage), then
//! recovery — whose result must equal a `BTreeMap` oracle's state at the
//! prefix of operations the store proves durable. Never a panic, never a
//! record the oracle had not yet acknowledged ("no silent data invention").

use csv_btree::BPlusTree;
use csv_common::key::identity_records;
use csv_common::sync::{AtomicUsize, Ordering};
use csv_common::{Key, KeyValue, Value};
use csv_concurrent::{
    MaintenanceConfig, MaintenanceEngine, ReadPath, ShardedIndex, ShardingConfig, WriteOp,
};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_durability::{
    read_manifest, recover, DurabilityConfig, Fault, FileSink, Recovered, MANIFEST_NAME,
};
use csv_lipp::LippIndex;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// A unique, empty temp directory per test case.
fn test_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "csv-crash-recovery-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating the test dir");
    dir
}

fn sharding(shards: usize) -> ShardingConfig {
    // A small overlay capacity forces folds — and therefore mid-sequence
    // checkpoints with WAL truncation — inside even short op sequences.
    ShardingConfig::with_shards(shards)
        .with_read_path(ReadPath::Rcu)
        .with_overlay_capacity(8)
}

/// One generated operation: upsert `key -> value` or remove `key`.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(Key, Value),
    Remove(Key),
}

/// Strategy for an op over a deliberately small key universe, so inserts
/// overwrite, removes hit, and removes miss — all three sequence behaviours.
fn op() -> impl Strategy<Value = Op> {
    (0u64..120, 0u64..4).prop_map(|(key, kind)| {
        if kind == 3 {
            Op::Remove(key)
        } else {
            Op::Insert(key, 1_000 + key * 7 + kind)
        }
    })
}

/// Strategy for the fault applied to the live WAL after the "crash":
/// nothing, a torn tail, a hard truncation, or a flipped bit.
fn wal_fault() -> impl Strategy<Value = Option<Fault>> {
    (0u64..4, 0u64..600, 0u8..8).prop_map(|(kind, offset, bit)| match kind {
        0 => None,
        1 => Some(Fault::DropTail(offset % 64)),
        2 => Some(Fault::TruncateAt(offset)),
        _ => Some(Fault::BitFlip { offset, bit }),
    })
}

/// Applies `op` to the oracle and reports whether it consumes a sequence
/// number (everything except removing an absent key does).
fn apply_to_oracle(oracle: &mut BTreeMap<Key, Value>, op: Op) -> bool {
    match op {
        Op::Insert(key, value) => {
            oracle.insert(key, value);
            true
        }
        Op::Remove(key) => oracle.remove(&key).is_some(),
    }
}

fn apply_to_index(index: &ShardedIndex<BPlusTree>, op: Op) {
    match op {
        Op::Insert(key, value) => {
            index.insert(key, value);
        }
        Op::Remove(key) => {
            index.remove(key);
        }
    }
}

fn as_records(oracle: &BTreeMap<Key, Value>) -> Vec<KeyValue> {
    oracle
        .iter()
        .map(|(&key, &value)| KeyValue::new(key, value))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property. Single shard, so the shard's `last_seq` is a
    /// global clock: every acknowledged op except a remove-of-absent
    /// consumes exactly one sequence number (folds absorb the triggering
    /// write's number into the checkpoint), so the recovered state must be
    /// *bit-equal* to the oracle's snapshot at the recovered sequence — not
    /// merely some plausible subset.
    #[test]
    fn recovered_state_is_an_exact_oracle_prefix(
        ops in pvec(op(), 1..100),
        fault in wal_fault(),
    ) {
        let dir = test_dir("prefix");
        // Oracle snapshots indexed by sequence number: snapshots[s] is the
        // state after the first s sequence-consuming ops (bulk load is
        // sequence 0).
        let mut oracle: BTreeMap<Key, Value> =
            (0..60u64).map(|i| (i * 2, i * 2)).collect();
        let mut snapshots = vec![oracle.clone()];
        {
            let sink = Arc::new(FileSink::create(DurabilityConfig::new(&dir)).unwrap());
            let index: ShardedIndex<BPlusTree> = ShardedIndex::bulk_load_durable(
                &as_records(&oracle),
                sharding(1),
                sink,
            );
            for &op in &ops {
                apply_to_index(&index, op);
                if apply_to_oracle(&mut oracle, op) {
                    snapshots.push(oracle.clone());
                }
            }
            // Crash: the index and its sink are dropped mid-flight, no
            // shutdown protocol exists to miss.
        }
        // Damage the live WAL the way a kill at an arbitrary write
        // boundary (or bit rot) would.
        if let Some(fault) = fault {
            let entries = read_manifest(&dir.join(MANIFEST_NAME)).unwrap().unwrap();
            let wal = dir.join(format!("wal-{}.wal", entries[0].1));
            fault.apply_to(&wal).unwrap();
        }
        let recovered: Recovered<BPlusTree> =
            recover(DurabilityConfig::new(&dir), sharding(1)).unwrap();
        prop_assert_eq!(recovered.report.shards.len(), 1);
        let last = recovered.report.shards[0].last_seq as usize;
        prop_assert!(
            last < snapshots.len(),
            "recovery must never report sequences past what was acknowledged (last={}, acked={})",
            last,
            snapshots.len() - 1
        );
        if fault.is_none() {
            // Nothing was damaged: the full sequence must survive.
            prop_assert_eq!(last, snapshots.len() - 1);
            prop_assert_eq!(recovered.report.torn_shards(), 0);
        }
        let expected = &snapshots[last];
        // Both read paths over the recovered index must agree with the
        // oracle's durable prefix: the range scan...
        prop_assert_eq!(recovered.index.range(0, Key::MAX), as_records(expected));
        // ...and point lookups across the whole key universe (hits and
        // misses).
        for key in 0..120u64 {
            prop_assert_eq!(recovered.index.get(key), expected.get(&key).copied());
        }
        prop_assert_eq!(recovered.report.keys, expected.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Live-fault variant: the WAL file itself swallows every byte past a
    /// random offset while the store believes its writes landed — a crash
    /// *during* the op sequence rather than after it. Recovery must still
    /// produce an exact oracle prefix.
    #[test]
    fn live_wal_truncation_still_recovers_a_prefix(
        ops in pvec(op(), 1..80),
        cut in 0u64..400,
    ) {
        let dir = test_dir("live-cut");
        let mut oracle: BTreeMap<Key, Value> =
            (0..40u64).map(|i| (i * 3, i)).collect();
        let mut snapshots = vec![oracle.clone()];
        {
            let config = DurabilityConfig::new(&dir).with_wal_fault(Fault::TruncateAt(cut));
            let sink = Arc::new(FileSink::create(config).unwrap());
            let index: ShardedIndex<BPlusTree> =
                ShardedIndex::bulk_load_durable(&as_records(&oracle), sharding(1), sink);
            for &op in &ops {
                apply_to_index(&index, op);
                if apply_to_oracle(&mut oracle, op) {
                    snapshots.push(oracle.clone());
                }
            }
        }
        // Recover with a clean config: the fault modelled the dying
        // process, not the disk.
        let recovered: Recovered<BPlusTree> =
            recover(DurabilityConfig::new(&dir), sharding(1)).unwrap();
        let last = recovered.report.shards[0].last_seq as usize;
        prop_assert!(last < snapshots.len());
        let expected = &snapshots[last];
        prop_assert_eq!(recovered.index.range(0, Key::MAX), as_records(expected));
        for key in 0..120u64 {
            prop_assert_eq!(recovered.index.get(key), expected.get(&key).copied());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Multi-shard: each shard recovers its own durable prefix
    /// independently. One shard's WAL is damaged; the others must lose
    /// nothing, and the damaged one must roll back to a per-shard oracle
    /// prefix.
    #[test]
    fn each_shard_recovers_its_own_prefix(
        ops in pvec(op(), 1..120),
        drop_tail in 1u64..80,
        victim_pick in 0usize..4,
    ) {
        let dir = test_dir("multi");
        let initial: BTreeMap<Key, Value> =
            (0..120u64).map(|k| (k, k + 1)).collect();
        {
            let sink = Arc::new(FileSink::create(DurabilityConfig::new(&dir)).unwrap());
            let index: ShardedIndex<BPlusTree> =
                ShardedIndex::bulk_load_durable(&as_records(&initial), sharding(4), sink);
            for &op in &ops {
                apply_to_index(&index, op);
            }
        }
        // The durable layout's shard bounds, from the manifest itself.
        let entries = read_manifest(&dir.join(MANIFEST_NAME)).unwrap().unwrap();
        let bounds: Vec<Key> = entries.iter().map(|&(lower, _)| lower).collect();
        let route = |key: Key| bounds.partition_point(|&b| b <= key) - 1;
        // Replay the ops against per-shard oracles, snapshotting each shard
        // at every sequence-consuming op it receives.
        let mut oracles: Vec<BTreeMap<Key, Value>> = vec![BTreeMap::new(); bounds.len()];
        for (&key, &value) in &initial {
            oracles[route(key)].insert(key, value);
        }
        let mut snapshots: Vec<Vec<BTreeMap<Key, Value>>> =
            oracles.iter().map(|o| vec![o.clone()]).collect();
        for &op in &ops {
            let shard = route(match op { Op::Insert(k, _) | Op::Remove(k) => k });
            if apply_to_oracle(&mut oracles[shard], op) {
                let snap = oracles[shard].clone();
                snapshots[shard].push(snap);
            }
        }
        let victim = victim_pick % bounds.len();
        let wal = dir.join(format!("wal-{}.wal", entries[victim].1));
        Fault::DropTail(drop_tail).apply_to(&wal).unwrap();
        let recovered: Recovered<BPlusTree> =
            recover(DurabilityConfig::new(&dir), sharding(4)).unwrap();
        prop_assert_eq!(recovered.report.shards.len(), bounds.len());
        let mut expected_all: Vec<KeyValue> = Vec::new();
        for (shard, report) in recovered.report.shards.iter().enumerate() {
            let last = report.last_seq as usize;
            prop_assert!(last < snapshots[shard].len(), "shard {} over-recovered", shard);
            if shard != victim {
                // Undamaged shards lose nothing.
                prop_assert_eq!(last, snapshots[shard].len() - 1, "shard {} under-recovered", shard);
            }
            expected_all.extend(as_records(&snapshots[shard][last]));
        }
        prop_assert_eq!(recovered.index.range(0, Key::MAX), expected_all);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// After recovery the maintenance engine resumes warm: the replayed
/// structural writes are visible as staleness, the engine drains them to
/// quiescence, and the background thread stays healthy end to end.
#[test]
fn recovered_index_rearms_maintenance() {
    let dir = test_dir("rearm");
    let keys: Vec<Key> = (0..4_000u64).map(|i| i * 5).collect();
    {
        let sink = Arc::new(FileSink::create(DurabilityConfig::new(&dir)).unwrap());
        let index: ShardedIndex<LippIndex> =
            ShardedIndex::bulk_load_durable(&identity_records(&keys), sharding(4), sink);
        // Drain the fresh staleness, then add structural writes that will
        // live only in the WAL at crash time.
        let engine = MaintenanceEngine::new(
            CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
            MaintenanceConfig::default(),
        );
        engine.run_until_idle(&index, 100);
        for i in 0..200u64 {
            index.insert(i * 5 + 1, i);
        }
    }
    let recovered: Recovered<LippIndex> =
        recover(DurabilityConfig::new(&dir), sharding(4)).unwrap();
    assert!(
        recovered.report.replayed() > 0,
        "the burst must replay from the WAL"
    );
    // The replayed structural writes re-armed the counters...
    let writes: usize = recovered
        .index
        .write_counters()
        .iter()
        .map(|&(writes, _)| writes)
        .sum();
    assert!(writes >= 1, "recovery must re-arm staleness, got {writes}");
    // ...and the background engine picks them up and quiesces, healthily.
    let index = Arc::new(recovered.index);
    let engine = MaintenanceEngine::new(
        CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
        MaintenanceConfig::default(),
    );
    let handle = engine.spawn(Arc::clone(&index));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while !index
        .write_counters()
        .iter()
        .all(|&(writes, maintained)| maintained && writes == 0)
    {
        assert!(
            std::time::Instant::now() < deadline,
            "engine never quiesced"
        );
        assert!(
            handle.is_healthy(),
            "engine wedged during recovery catch-up"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let stats = handle.shutdown().expect("no tick may panic");
    assert!(stats.maintain_passes + stats.checkpoints > 0);
    for i in (0..200u64).step_by(17) {
        assert_eq!(index.get(i * 5 + 1), Some(i));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite pin: a crash mid-group-commit recovers either *all* of a
/// batch's WAL frame or *none* of it, never a proper subset. A point write
/// then a `write_batch` land in one shard's WAL; cutting that WAL at every
/// byte must recover exactly one of the three acknowledged states — bulk
/// only, bulk + point write, or bulk + point write + whole batch — and both
/// non-trivial states must actually occur across the cuts.
#[test]
fn group_commits_recover_all_or_nothing() {
    let dir = test_dir("group-commit");
    let initial: BTreeMap<Key, Value> = (0..40u64).map(|i| (i * 3, i)).collect();
    // Fresh insert, tombstone, overwrite, fresh insert: every record shape
    // a batch frame can carry.
    let batch = [
        WriteOp::Insert { key: 1, value: 100 },
        WriteOp::Remove { key: 3 },
        WriteOp::Insert { key: 6, value: 600 },
        WriteOp::Insert {
            key: 121,
            value: 700,
        },
    ];
    {
        let sink = Arc::new(FileSink::create(DurabilityConfig::new(&dir)).unwrap());
        let index: ShardedIndex<BPlusTree> =
            ShardedIndex::bulk_load_durable(&as_records(&initial), sharding(1), sink);
        index.insert(0, 50);
        let outcome = index.write_batch(&batch);
        assert_eq!(outcome.fresh_inserts, 2);
        assert_eq!(outcome.removed, 1);
        // Crash: five buffered writes stay well under the capacity-8 fold,
        // so the WAL holds exactly one point record and one batch frame.
    }
    let mut pre = initial.clone();
    pre.insert(0, 50);
    let mut post = pre.clone();
    post.insert(1, 100);
    post.remove(&3);
    post.insert(6, 600);
    post.insert(121, 700);
    let states = [as_records(&initial), as_records(&pre), as_records(&post)];

    let entries = read_manifest(&dir.join(MANIFEST_NAME)).unwrap().unwrap();
    let wal_name = format!("wal-{}.wal", entries[0].1);
    let wal_len = std::fs::metadata(dir.join(&wal_name)).unwrap().len() as usize;
    let (mut seen_pre, mut seen_post) = (false, false);
    for cut in 0..=wal_len {
        // Recovery re-checkpoints the store, so each cut replays against a
        // fresh copy of the crashed directory.
        let scratch = test_dir("group-commit-cut");
        for entry in std::fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), scratch.join(entry.file_name())).unwrap();
        }
        Fault::TruncateAt(cut as u64)
            .apply_to(&scratch.join(&wal_name))
            .unwrap();
        let recovered: Recovered<BPlusTree> =
            recover(DurabilityConfig::new(&scratch), sharding(1)).unwrap();
        let got = recovered.index.range(0, Key::MAX);
        if got == states[2] {
            seen_post = true;
        } else if got == states[1] {
            seen_pre = true;
        } else {
            assert_eq!(
                got, states[0],
                "cut={cut} recovered a state no acknowledged prefix ever held \
                 (a partial batch?)"
            );
        }
        let _ = std::fs::remove_dir_all(&scratch);
    }
    assert!(
        seen_pre,
        "some cut must land between the point write and the batch"
    );
    assert!(seen_post, "the uncut tail must recover the whole batch");
    let _ = std::fs::remove_dir_all(&dir);
}
