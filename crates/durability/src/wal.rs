//! The per-shard write-ahead log.
//!
//! File layout:
//!
//! ```text
//! header:  "CSVWAL01" | start_seq u64 LE | crc32(start_seq bytes) u32 LE
//! record:  len u32 LE | crc32(body) u32 LE | body
//! body:    seq u64 LE | op u8 (0 tombstone, 1 upsert) | key u64 LE | [value u64 LE]
//! batch:   seq u64 LE | op u8 (2) | count u32 LE | count × (op u8, key u64 LE, [value u64 LE])
//! ```
//!
//! Records are length-prefixed and individually checksummed, and their
//! sequence numbers continue monotonically from the header's `start_seq`
//! (the owning checkpoint's last durable sequence). A batch frame (op 2,
//! written by [`WalWriter::append_batch`]) carries a whole group commit
//! under a *single* checksum: its `seq` names the first sub-record and the
//! group occupies `count` consecutive sequence numbers, so a torn or
//! corrupt batch frame drops the entire group — recovery sees all of a
//! group commit or none of it, never a proper subset. The reader
//! ([`read_wal`]) is the graceful-degradation half of the design: it
//! replays the longest valid prefix and *stops* — never panics — at the
//! first torn, truncated, corrupt or out-of-sequence record, reporting why
//! in [`WalEnd`]. Since every record is an absolute upsert/tombstone,
//! replay is idempotent, which is what makes "checkpoint then truncate the
//! log" crash-safe without a distributed transaction between the two files.

use crate::crc::crc32;
use crate::fault::{Fault, FaultFile};
use csv_common::{Key, Value};
use csv_concurrent::WriteRecord;
use std::io::{self, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CSVWAL01";
const HEADER_LEN: usize = 8 + 8 + 4;
/// Body length of a tombstone record (`seq + op + key`).
const TOMBSTONE_BODY: usize = 8 + 1 + 8;
/// Body length of an upsert record (`seq + op + key + value`).
const UPSERT_BODY: usize = TOMBSTONE_BODY + 8;
/// Op byte of a group-commit batch frame.
const BATCH_OP: u8 = 2;
/// Leading bytes of a batch frame body (`seq + op + count`).
const BATCH_PREFIX: usize = 8 + 1 + 4;
/// Bytes of a tombstone sub-record inside a batch body (`op + key`).
const TOMBSTONE_SUB: usize = 1 + 8;
/// Bytes of an upsert sub-record inside a batch body (`op + key + value`).
const UPSERT_SUB: usize = TOMBSTONE_SUB + 8;

/// One decoded log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's sequence number (`start_seq`-relative position is
    /// `seq - start_seq`).
    pub seq: u64,
    /// The written key.
    pub key: Key,
    /// `Some` for an upsert, `None` for a tombstone.
    pub value: Option<Value>,
}

/// Why replay stopped where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalEnd {
    /// The file ended exactly at a record boundary: nothing was lost.
    Clean,
    /// The file ended inside a record — a torn append. The record was
    /// never acknowledged, so stopping loses nothing durable.
    TornTail,
    /// A record failed its checksum or framing — bit rot or a torn
    /// overwrite. Replay stops at the last intact record.
    CorruptRecord,
    /// A record's sequence number broke monotonic continuity.
    SequenceGap,
    /// The header was missing or corrupt; nothing was replayed.
    CorruptHeader,
    /// The file does not exist; nothing was replayed.
    Missing,
}

impl WalEnd {
    /// `true` when replay stopped early for any reason other than a clean
    /// end-of-file.
    pub fn is_torn(&self) -> bool {
        !matches!(self, WalEnd::Clean)
    }
}

/// The result of reading a log: the longest valid record prefix and why it
/// ended.
#[derive(Debug, Clone)]
pub struct WalReplay {
    /// The header's starting sequence (0 when the header was unreadable).
    pub start_seq: u64,
    /// The valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Why replay stopped.
    pub end: WalEnd,
}

impl WalReplay {
    /// The last durable sequence number: the final replayed record's, or
    /// the checkpoint's own (`start_seq`) when nothing replayed.
    pub fn last_seq(&self) -> u64 {
        self.records.last().map_or(self.start_seq, |r| r.seq)
    }
}

/// Appends records to one shard's log. Writes go straight to the file (a
/// record is a single `write`), so a crash tears at most the final record —
/// exactly what [`read_wal`] tolerates.
#[derive(Debug)]
pub struct WalWriter {
    file: FaultFile,
    seq: u64,
}

impl WalWriter {
    /// Creates (truncating) the log at `path`, sequenced from `start_seq`,
    /// with an optional injected fault.
    pub fn create(path: &Path, start_seq: u64, fault: Option<Fault>) -> io::Result<Self> {
        let mut file = FaultFile::create(path, fault)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&start_seq.to_le_bytes());
        let crc = crc32(&start_seq.to_le_bytes());
        header.extend_from_slice(&crc.to_le_bytes());
        file.write_all(&header)?;
        Ok(Self {
            file,
            seq: start_seq,
        })
    }

    /// The sequence number of the last appended record (or the starting
    /// sequence when none was).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Appends one record and returns its sequence number. The bytes are
    /// handed to the OS before this returns; pair with [`WalWriter::sync`]
    /// for power-loss durability.
    pub fn append(&mut self, key: Key, value: Option<Value>) -> io::Result<u64> {
        self.seq += 1;
        let mut body = Vec::with_capacity(UPSERT_BODY);
        body.extend_from_slice(&self.seq.to_le_bytes());
        body.push(u8::from(value.is_some()));
        body.extend_from_slice(&key.to_le_bytes());
        if let Some(value) = value {
            body.extend_from_slice(&value.to_le_bytes());
        }
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        Ok(self.seq)
    }

    /// Appends a whole group commit as one checksummed batch frame — a
    /// single `write` — and returns the final sequence number. The group
    /// occupies `records.len()` consecutive sequence numbers but shares one
    /// checksum, so replay recovers it all-or-nothing. Appending an empty
    /// batch writes nothing.
    pub fn append_batch(&mut self, records: &[WriteRecord]) -> io::Result<u64> {
        if records.is_empty() {
            return Ok(self.seq);
        }
        let first = self.seq + 1;
        let mut body = Vec::with_capacity(BATCH_PREFIX + records.len() * UPSERT_SUB);
        body.extend_from_slice(&first.to_le_bytes());
        body.push(BATCH_OP);
        body.extend_from_slice(&(records.len() as u32).to_le_bytes());
        for record in records {
            body.push(u8::from(record.value.is_some()));
            body.extend_from_slice(&record.key.to_le_bytes());
            if let Some(value) = record.value {
                body.extend_from_slice(&value.to_le_bytes());
            }
        }
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        self.seq += records.len() as u64;
        Ok(self.seq)
    }

    /// Flushes the log to stable storage (`fsync`).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync()
    }
}

/// Reads the longest valid record prefix of the log at `path` (see the
/// module docs for the tolerance contract). I/O errors other than "file
/// not found" are returned; corruption never is — it ends the replay.
pub fn read_wal(path: &Path) -> io::Result<WalReplay> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(WalReplay {
                start_seq: 0,
                records: Vec::new(),
                end: WalEnd::Missing,
            })
        }
        Err(e) => return Err(e),
    };
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return Ok(WalReplay {
            start_seq: 0,
            records: Vec::new(),
            end: WalEnd::CorruptHeader,
        });
    }
    let start_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let header_crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if crc32(&bytes[8..16]) != header_crc {
        return Ok(WalReplay {
            start_seq: 0,
            records: Vec::new(),
            end: WalEnd::CorruptHeader,
        });
    }
    let mut records = Vec::new();
    let mut expected_seq = start_seq;
    let mut at = HEADER_LEN;
    let end = loop {
        if at == bytes.len() {
            break WalEnd::Clean;
        }
        if bytes.len() - at < 8 {
            break WalEnd::TornTail;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len < TOMBSTONE_BODY {
            break WalEnd::CorruptRecord;
        }
        if bytes.len() - at - 8 < len {
            break WalEnd::TornTail;
        }
        let body = &bytes[at + 8..at + 8 + len];
        if crc32(body) != crc {
            break WalEnd::CorruptRecord;
        }
        let seq = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        let op = body[8];
        match (op, len) {
            (0, TOMBSTONE_BODY) | (1, UPSERT_BODY) => {
                if seq != expected_seq + 1 {
                    break WalEnd::SequenceGap;
                }
                let key = Key::from_le_bytes(body[9..17].try_into().expect("8 bytes"));
                let value = (op == 1)
                    .then(|| Value::from_le_bytes(body[17..25].try_into().expect("8 bytes")));
                expected_seq = seq;
                records.push(WalRecord { seq, key, value });
            }
            (BATCH_OP, _) => {
                let Some(group) = decode_batch(seq, body) else {
                    break WalEnd::CorruptRecord;
                };
                if seq != expected_seq + 1 {
                    break WalEnd::SequenceGap;
                }
                expected_seq = seq + group.len() as u64 - 1;
                records.extend(group);
            }
            _ => break WalEnd::CorruptRecord,
        }
        at += 8 + len;
    };
    Ok(WalReplay {
        start_seq,
        records,
        end,
    })
}

/// Decodes a batch frame body (op 2) into its sub-records, sequenced
/// consecutively from `first_seq`, or `None` when the framing is
/// inconsistent (bad count, bad sub-op, or trailing/missing bytes). The
/// caller has already verified the checksum; a `None` here means the frame
/// never round-trips through [`WalWriter::append_batch`] and is treated as
/// corrupt — dropping the whole group.
fn decode_batch(first_seq: u64, body: &[u8]) -> Option<Vec<WalRecord>> {
    if body.len() < BATCH_PREFIX {
        return None;
    }
    let count = u32::from_le_bytes(body[9..13].try_into().expect("4 bytes")) as usize;
    if count == 0 {
        return None;
    }
    let mut group = Vec::with_capacity(count);
    let mut at = BATCH_PREFIX;
    for i in 0..count {
        let op = *body.get(at)?;
        let sub = match op {
            0 => TOMBSTONE_SUB,
            1 => UPSERT_SUB,
            _ => return None,
        };
        if body.len() - at < sub {
            return None;
        }
        let key = Key::from_le_bytes(body[at + 1..at + 9].try_into().expect("8 bytes"));
        let value = (op == 1)
            .then(|| Value::from_le_bytes(body[at + 9..at + 17].try_into().expect("8 bytes")));
        group.push(WalRecord {
            seq: first_seq + i as u64,
            key,
            value,
        });
        at += sub;
    }
    (at == body.len()).then_some(group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    fn sample_records() -> Vec<(Key, Option<Value>)> {
        vec![
            (10, Some(100)),
            (20, Some(200)),
            (10, None),
            (30, Some(300)),
            (20, Some(201)),
        ]
    }

    fn write_sample(path: &Path, start_seq: u64) -> u64 {
        let mut writer = WalWriter::create(path, start_seq, None).unwrap();
        for (key, value) in sample_records() {
            writer.append(key, value).unwrap();
        }
        writer.sync().unwrap();
        writer.seq()
    }

    #[test]
    fn roundtrip_preserves_records_and_sequence() {
        let dir = test_dir("wal-roundtrip");
        let path = dir.join("wal");
        let last = write_sample(&path, 41);
        assert_eq!(last, 46);
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.start_seq, 41);
        assert_eq!(replay.end, WalEnd::Clean);
        assert_eq!(replay.last_seq(), 46);
        let decoded: Vec<(Key, Option<Value>)> =
            replay.records.iter().map(|r| (r.key, r.value)).collect();
        assert_eq!(decoded, sample_records());
        assert_eq!(
            replay.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![42, 43, 44, 45, 46]
        );
    }

    /// Truncating the file at *every* possible byte length must yield a
    /// valid prefix — never a panic, never a record the writer did not
    /// acknowledge.
    #[test]
    fn every_truncation_point_degrades_to_a_prefix() {
        let dir = test_dir("wal-truncation");
        let full_path = dir.join("full");
        write_sample(&full_path, 0);
        let full = std::fs::read(&full_path).unwrap();
        // Stream offsets where the file ends exactly between records — a
        // cut there reads as a shorter-but-clean log, not a torn one.
        let mut boundaries = vec![HEADER_LEN];
        for (_, value) in sample_records() {
            let body = if value.is_some() {
                UPSERT_BODY
            } else {
                TOMBSTONE_BODY
            };
            boundaries.push(boundaries.last().unwrap() + 8 + body);
        }
        assert_eq!(*boundaries.last().unwrap(), full.len());
        for cut in 0..=full.len() {
            let path = dir.join("cut");
            std::fs::write(&path, &full[..cut]).unwrap();
            let replay = read_wal(&path).unwrap();
            if cut < HEADER_LEN {
                assert_eq!(replay.end, WalEnd::CorruptHeader, "cut={cut}");
                assert!(replay.records.is_empty());
                continue;
            }
            // The replayed prefix must match the written one record for
            // record.
            let expected: Vec<(Key, Option<Value>)> = sample_records()
                .into_iter()
                .take(replay.records.len())
                .collect();
            let decoded: Vec<(Key, Option<Value>)> =
                replay.records.iter().map(|r| (r.key, r.value)).collect();
            assert_eq!(decoded, expected, "cut={cut}");
            if boundaries.contains(&cut) {
                assert_eq!(replay.end, WalEnd::Clean, "cut={cut} is a boundary");
                assert_eq!(
                    replay.records.len(),
                    boundaries.iter().position(|&b| b == cut).unwrap()
                );
            } else {
                assert!(replay.end.is_torn(), "cut={cut} must be torn");
            }
        }
    }

    /// Flipping any single bit of any record must stop replay at (or
    /// before) that record — corrupt data is never replayed.
    #[test]
    fn bit_flips_never_replay_corrupt_records() {
        let dir = test_dir("wal-bitflip");
        let full_path = dir.join("full");
        write_sample(&full_path, 0);
        let full = std::fs::read(&full_path).unwrap();
        let samples = sample_records();
        for offset in (HEADER_LEN..full.len()).step_by(3) {
            for bit in [0u8, 5] {
                let path = dir.join("flipped");
                std::fs::write(&path, &full).unwrap();
                Fault::BitFlip {
                    offset: offset as u64,
                    bit,
                }
                .apply_to(&path)
                .unwrap();
                let replay = read_wal(&path).unwrap();
                // Whatever prefix survives must be uncorrupted records.
                for (record, expected) in replay.records.iter().zip(&samples) {
                    assert_eq!((record.key, record.value), *expected);
                }
                assert!(
                    replay.records.len() < samples.len(),
                    "a flip at {offset} must lose at least the record it hit"
                );
                assert!(replay.end.is_torn());
            }
        }
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let dir = test_dir("wal-missing");
        let replay = read_wal(&dir.join("nope")).unwrap();
        assert_eq!(replay.end, WalEnd::Missing);
        assert!(replay.records.is_empty());
    }

    fn batch(records: &[(Key, Option<Value>)]) -> Vec<WriteRecord> {
        records
            .iter()
            .map(|&(key, value)| WriteRecord { key, value })
            .collect()
    }

    #[test]
    fn batch_frames_roundtrip_interleaved_with_point_records() {
        let dir = test_dir("wal-batch-roundtrip");
        let path = dir.join("wal");
        {
            let mut writer = WalWriter::create(&path, 10, None).unwrap();
            assert_eq!(writer.append(1, Some(11)).unwrap(), 11);
            let group = batch(&[(2, Some(22)), (3, None), (4, Some(44))]);
            assert_eq!(writer.append_batch(&group).unwrap(), 14);
            assert_eq!(
                writer.append_batch(&[]).unwrap(),
                14,
                "empty batch is a no-op"
            );
            assert_eq!(writer.append(5, None).unwrap(), 15);
        }
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.end, WalEnd::Clean);
        assert_eq!(replay.last_seq(), 15);
        let decoded: Vec<(u64, Key, Option<Value>)> = replay
            .records
            .iter()
            .map(|r| (r.seq, r.key, r.value))
            .collect();
        assert_eq!(
            decoded,
            vec![
                (11, 1, Some(11)),
                (12, 2, Some(22)),
                (13, 3, None),
                (14, 4, Some(44)),
                (15, 5, None),
            ]
        );
    }

    /// Truncating or corrupting a batch frame must drop the *whole* group —
    /// recovery sees all of a group commit or none of it, never a subset.
    #[test]
    fn batch_frames_recover_all_or_nothing() {
        let dir = test_dir("wal-batch-atomic");
        let full_path = dir.join("full");
        {
            let mut writer = WalWriter::create(&full_path, 0, None).unwrap();
            writer.append(1, Some(1)).unwrap();
            writer
                .append_batch(&batch(&[(2, Some(2)), (3, None), (4, Some(4))]))
                .unwrap();
            writer.append(5, Some(5)).unwrap();
        }
        let full = std::fs::read(&full_path).unwrap();
        let batch_body = BATCH_PREFIX + 2 * UPSERT_SUB + TOMBSTONE_SUB;
        let expected_len = HEADER_LEN + (8 + UPSERT_BODY) * 2 + 8 + batch_body;
        assert_eq!(full.len(), expected_len);
        for cut in HEADER_LEN..=full.len() {
            let path = dir.join("cut");
            std::fs::write(&path, &full[..cut]).unwrap();
            let replay = read_wal(&path).unwrap();
            assert!(
                [0, 1, 4, 5].contains(&replay.records.len()),
                "cut={cut} replayed a proper subset of the batch: {} records",
                replay.records.len()
            );
        }
        let batch_start = HEADER_LEN + 8 + UPSERT_BODY;
        for offset in batch_start..batch_start + 8 + batch_body {
            let path = dir.join("flipped");
            std::fs::write(&path, &full).unwrap();
            Fault::BitFlip {
                offset: offset as u64,
                bit: 3,
            }
            .apply_to(&path)
            .unwrap();
            let replay = read_wal(&path).unwrap();
            assert!(
                replay.end.is_torn(),
                "flip at {offset} must end replay early"
            );
            assert!(
                replay.records.len() <= 1,
                "flip at {offset} replayed part of the batch"
            );
        }
    }

    /// A sequence gap (a record lost in the middle, not at the tail) stops
    /// replay even though later records checksum correctly.
    #[test]
    fn sequence_gaps_stop_replay() {
        let dir = test_dir("wal-seqgap");
        let path = dir.join("wal");
        {
            let mut writer = WalWriter::create(&path, 0, None).unwrap();
            writer.append(1, Some(1)).unwrap();
            writer.append(2, Some(2)).unwrap();
            writer.append(3, Some(3)).unwrap();
        }
        // Excise the middle record (8 + UPSERT_BODY framed bytes).
        let bytes = std::fs::read(&path).unwrap();
        let record = 8 + UPSERT_BODY;
        let mut gapped = bytes[..HEADER_LEN + record].to_vec();
        gapped.extend_from_slice(&bytes[HEADER_LEN + 2 * record..]);
        std::fs::write(&path, &gapped).unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.end, WalEnd::SequenceGap);
    }
}
