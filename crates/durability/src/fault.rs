//! Fault injection for the durability layer's crash tests.
//!
//! [`FaultFile`] wraps a real file and misbehaves on command, modelling the
//! three failure shapes a write-ahead log actually meets in the field:
//!
//! * [`Fault::TruncateAt`] — a crash mid-append: writes past a byte offset
//!   are acknowledged to the writer but never reach the file.
//! * [`Fault::DropTail`] — a torn tail: the final bytes vanish when the
//!   file is closed (or the handle dropped — a simulated crash).
//! * [`Fault::BitFlip`] — latent media corruption: one bit of one byte is
//!   flipped at close.
//!
//! [`Fault::apply_to`] applies the same corruptions post-hoc to a file on
//! disk, which is how the crash-recovery property test corrupts a log
//! *after* the "crashed" process dropped its store.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// One injected failure (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Silently drop every byte from stream offset `at` onward: writes
    /// appear to succeed but the file never grows past `at`.
    TruncateAt(u64),
    /// Flip bit `bit % 8` of the byte at `offset` when the file is closed
    /// or dropped (no-op when the file is shorter).
    BitFlip {
        /// Byte offset of the victim.
        offset: u64,
        /// Bit index within the byte (taken modulo 8).
        bit: u8,
    },
    /// Remove the final `n` bytes when the file is closed or dropped.
    DropTail(u64),
}

impl Fault {
    /// Applies the fault to an existing file in place.
    pub fn apply_to(&self, path: &Path) -> io::Result<()> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        apply_to_open(self, &mut file)
    }
}

fn apply_to_open(fault: &Fault, file: &mut File) -> io::Result<()> {
    match *fault {
        Fault::TruncateAt(at) => {
            let len = file.metadata()?.len();
            file.set_len(len.min(at))
        }
        Fault::BitFlip { offset, bit } => {
            if offset >= file.metadata()?.len() {
                return Ok(());
            }
            file.seek(SeekFrom::Start(offset))?;
            let mut byte = [0u8; 1];
            file.read_exact(&mut byte)?;
            byte[0] ^= 1 << (bit % 8);
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(&byte)
        }
        Fault::DropTail(n) => {
            let len = file.metadata()?.len();
            file.set_len(len.saturating_sub(n))
        }
    }
}

/// A file handle that injects an optional [`Fault`]. With `fault: None` it
/// is a plain pass-through, so production WAL writes and fault-injected
/// test writes share one code path.
#[derive(Debug)]
pub struct FaultFile {
    file: File,
    /// Logical bytes the caller has written (what the caller *believes* the
    /// file holds — [`Fault::TruncateAt`] makes it diverge from reality).
    written: u64,
    fault: Option<Fault>,
    closed: bool,
}

impl FaultFile {
    /// Creates (truncating) `path`.
    pub fn create(path: &Path, fault: Option<Fault>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            written: 0,
            fault,
            closed: false,
        })
    }

    /// Bytes the caller has logically written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes OS buffers to stable storage (`fsync`).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Applies close-time faults and closes the file. Dropping the handle
    /// does the same with errors swallowed — the shape of a process crash,
    /// which is exactly what the fault kinds applied at close model.
    pub fn close(mut self) -> io::Result<()> {
        self.closed = true;
        if let Some(fault) = self.fault {
            apply_to_open(&fault, &mut self.file)?;
        }
        Ok(())
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let logical = self.written;
        self.written += buf.len() as u64;
        if let Some(Fault::TruncateAt(at)) = self.fault {
            if logical >= at {
                return Ok(buf.len());
            }
            let keep = ((at - logical) as usize).min(buf.len());
            self.file.write_all(&buf[..keep])?;
            return Ok(buf.len());
        }
        self.file.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl Drop for FaultFile {
    fn drop(&mut self) {
        if !self.closed {
            if let Some(fault) = self.fault {
                let _ = apply_to_open(&fault, &mut self.file);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    #[test]
    fn truncate_at_swallows_the_tail_silently() {
        let dir = test_dir("fault-truncate");
        let path = dir.join("f");
        let mut file = FaultFile::create(&path, Some(Fault::TruncateAt(5))).unwrap();
        file.write_all(b"0123").unwrap();
        file.write_all(b"4567").unwrap();
        file.write_all(b"89").unwrap();
        assert_eq!(file.written(), 10, "the writer believes every byte landed");
        file.close().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"01234");
    }

    #[test]
    fn drop_tail_applies_at_close_and_at_drop() {
        let dir = test_dir("fault-droptail");
        for close_explicitly in [true, false] {
            let path = dir.join(format!("f{close_explicitly}"));
            let mut file = FaultFile::create(&path, Some(Fault::DropTail(3))).unwrap();
            file.write_all(b"0123456789").unwrap();
            if close_explicitly {
                file.close().unwrap();
            } else {
                drop(file);
            }
            assert_eq!(std::fs::read(&path).unwrap(), b"0123456");
        }
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let dir = test_dir("fault-bitflip");
        let path = dir.join("f");
        let mut file =
            FaultFile::create(&path, Some(Fault::BitFlip { offset: 2, bit: 0 })).unwrap();
        file.write_all(b"aaaa").unwrap();
        file.close().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"aa\x60a");
        // Applying the same flip post-hoc flips it back.
        Fault::BitFlip { offset: 2, bit: 0 }
            .apply_to(&path)
            .unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"aaaa");
    }

    #[test]
    fn no_fault_is_a_pass_through() {
        let dir = test_dir("fault-none");
        let path = dir.join("f");
        let mut file = FaultFile::create(&path, None).unwrap();
        file.write_all(b"payload").unwrap();
        file.sync().unwrap();
        file.close().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
    }
}
