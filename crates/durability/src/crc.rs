//! CRC32 (IEEE 802.3, the zlib/gzip polynomial), hand-rolled because the
//! build environment vendors no checksum crate. Table-driven, one byte per
//! step — plenty for WAL records and checkpoint files whose cost is
//! dominated by the I/O around them.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                POLY ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = table();

/// CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in bytes {
        crc = TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn matches_the_reference_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut bytes = b"a shard log record".to_vec();
        let clean = crc32(&bytes);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert_ne!(crc32(&bytes), clean, "flip at byte {i} bit {bit}");
                bytes[i] ^= 1 << bit;
            }
        }
    }
}
