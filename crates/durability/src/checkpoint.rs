//! Atomic per-shard checkpoint files.
//!
//! A checkpoint is one shard's folded base — every live record — plus the
//! bookkeeping recovery needs: the shard's lower bound, the last durable
//! WAL sequence the checkpoint covers, and the staleness seed that re-arms
//! the maintenance engine. The file is written to a temporary name, fsynced,
//! then renamed into place (and the directory fsynced), so a crash leaves
//! either the old checkpoint or the new one — never a half-written file
//! under the live name. The whole body is covered by a trailing CRC32, so
//! recovery can tell a checkpoint it must not trust.
//!
//! ```text
//! "CSVCKPT1" | body | crc32(body) u32 LE
//! body: lower_bound u64 | last_seq u64 | stale_writes u64 | maintained u8
//!     | mean_level f64-bits u64 | num_records u64 | (key u64, value u64)*
//! ```

use crate::crc::crc32;
use crate::store::DurabilityError;
use csv_common::{Key, KeyValue, Value};
use csv_concurrent::StaleSeed;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CSVCKPT1";
const FIXED_BODY: usize = 8 + 8 + 8 + 1 + 8 + 8;

/// One decoded checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The shard's lower bound.
    pub lower_bound: Key,
    /// The last WAL sequence this checkpoint covers; the shard's log starts
    /// here.
    pub last_seq: u64,
    /// Staleness seed to re-arm on recovery.
    pub stale: StaleSeed,
    /// Every live record of the shard, ascending.
    pub records: Vec<KeyValue>,
}

/// Serializes `checkpoint` into `path` atomically: write `path` + `.tmp`,
/// fsync, rename over `path`, fsync the parent directory.
pub fn write_checkpoint(path: &Path, checkpoint: &Checkpoint) -> io::Result<()> {
    write_checkpoint_parts(
        path,
        checkpoint.lower_bound,
        checkpoint.last_seq,
        checkpoint.stale,
        &checkpoint.records,
    )
}

/// [`write_checkpoint`] over borrowed parts, so callers holding a records
/// slice need not assemble an owning [`Checkpoint`].
pub fn write_checkpoint_parts(
    path: &Path,
    lower_bound: Key,
    last_seq: u64,
    stale: StaleSeed,
    records: &[KeyValue],
) -> io::Result<()> {
    let checkpoint = (lower_bound, last_seq, stale);
    let mut body = Vec::with_capacity(FIXED_BODY + 16 * records.len());
    body.extend_from_slice(&checkpoint.0.to_le_bytes());
    body.extend_from_slice(&checkpoint.1.to_le_bytes());
    body.extend_from_slice(&(checkpoint.2.writes as u64).to_le_bytes());
    body.push(u8::from(checkpoint.2.maintained));
    body.extend_from_slice(&checkpoint.2.mean_level.to_bits().to_le_bytes());
    body.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for record in records {
        body.extend_from_slice(&record.key.to_le_bytes());
        body.extend_from_slice(&record.value.to_le_bytes());
    }
    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(MAGIC)?;
        file.write_all(&body)?;
        file.write_all(&crc32(&body).to_le_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Fsyncs `path`'s parent directory so the rename itself is durable.
pub fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Reads and verifies the checkpoint at `path`. Unlike a WAL tail, a
/// corrupt checkpoint is not degradable — it is the shard's base state — so
/// every defect is a typed error.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, DurabilityError> {
    let corrupt = |reason: &str| DurabilityError::CorruptCheckpoint {
        path: PathBuf::from(path),
        reason: reason.to_string(),
    };
    let bytes = std::fs::read(path).map_err(|source| DurabilityError::Io {
        context: format!("reading checkpoint {}", path.display()),
        source,
    })?;
    if bytes.len() < 8 + FIXED_BODY + 4 || &bytes[..8] != MAGIC {
        return Err(corrupt("missing or truncated header"));
    }
    let body = &bytes[8..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }
    let u64_at = |at: usize| u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"));
    let lower_bound = u64_at(0);
    let last_seq = u64_at(8);
    let stale_writes = u64_at(16);
    let maintained = match body[24] {
        0 => false,
        1 => true,
        _ => return Err(corrupt("invalid maintained flag")),
    };
    let mean_level = f64::from_bits(u64_at(25));
    let num_records = u64_at(33) as usize;
    if body.len() != FIXED_BODY + 16 * num_records {
        return Err(corrupt("record count disagrees with file length"));
    }
    let mut records = Vec::with_capacity(num_records);
    for i in 0..num_records {
        let at = FIXED_BODY + 16 * i;
        records.push(KeyValue::new(u64_at(at) as Key, u64_at(at + 8) as Value));
    }
    Ok(Checkpoint {
        lower_bound,
        last_seq,
        stale: StaleSeed {
            writes: stale_writes as usize,
            maintained,
            mean_level,
        },
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use crate::test_dir;

    fn sample() -> Checkpoint {
        Checkpoint {
            lower_bound: 7,
            last_seq: 99,
            stale: StaleSeed {
                writes: 12,
                maintained: true,
                mean_level: 2.25,
            },
            records: (0..100u64).map(|i| KeyValue::new(7 + i * 3, i)).collect(),
        }
    }

    #[test]
    fn roundtrip() {
        let dir = test_dir("ckpt-roundtrip");
        let path = dir.join("ckpt-1.ckpt");
        write_checkpoint(&path, &sample()).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), sample());
        assert!(
            !path.with_extension("tmp").exists(),
            "the temp file must be renamed away"
        );
    }

    #[test]
    fn corruption_is_a_typed_error_not_data() {
        let dir = test_dir("ckpt-corrupt");
        let path = dir.join("ckpt-1.ckpt");
        write_checkpoint(&path, &sample()).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        // A flip anywhere — header, body, trailer — must be detected.
        for offset in [0u64, 9, len / 2, len - 1] {
            Fault::BitFlip { offset, bit: 3 }.apply_to(&path).unwrap();
            assert!(matches!(
                read_checkpoint(&path),
                Err(DurabilityError::CorruptCheckpoint { .. })
            ));
            Fault::BitFlip { offset, bit: 3 }.apply_to(&path).unwrap();
        }
        // Restored: reads clean again.
        assert_eq!(read_checkpoint(&path).unwrap(), sample());
        // A truncated tail is equally fatal for a checkpoint.
        Fault::DropTail(5).apply_to(&path).unwrap();
        assert!(read_checkpoint(&path).is_err());
    }

    #[test]
    fn empty_shard_checkpoints_fine() {
        let dir = test_dir("ckpt-empty");
        let path = dir.join("ckpt-0.ckpt");
        let empty = Checkpoint {
            lower_bound: 0,
            last_seq: 0,
            stale: StaleSeed::fresh(0),
            records: Vec::new(),
        };
        write_checkpoint(&path, &empty).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), empty);
    }
}
