//! The store manifest: the single source of truth for which checkpoint
//! epoch is live for each shard.
//!
//! Checkpoint and WAL files are named by a monotonically increasing epoch
//! (`ckpt-<epoch>.ckpt` / `wal-<epoch>.wal`) and are immutable once the
//! manifest references them (LSM-style). A durable layout transition is:
//! write the new epoch files, then atomically replace `MANIFEST`, then
//! delete the files the new manifest no longer references. A crash anywhere
//! in that sequence leaves either the old manifest (stray new-epoch files
//! are garbage-collected on the next transition or on recovery) or the new
//! one — recovery reads the manifest and nothing else decides what is live.
//!
//! ```text
//! "CSVMAN01" | num u64 LE | (lower_bound u64 LE, epoch u64 LE)* | crc32(body) u32 LE
//! ```

use crate::checkpoint::sync_parent_dir;
use crate::crc::crc32;
use crate::store::DurabilityError;
use csv_common::Key;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CSVMAN01";

/// The manifest's file name inside the data directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// The live `(lower_bound, epoch)` pairs, sorted by lower bound.
pub type ManifestEntries = Vec<(Key, u64)>;

/// Atomically replaces the manifest at `path` (write temp + fsync + rename
/// + directory fsync).
pub fn write_manifest(path: &Path, entries: &ManifestEntries) -> io::Result<()> {
    let mut body = Vec::with_capacity(8 + 16 * entries.len());
    body.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for &(lower, epoch) in entries {
        body.extend_from_slice(&lower.to_le_bytes());
        body.extend_from_slice(&epoch.to_le_bytes());
    }
    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(MAGIC)?;
        file.write_all(&body)?;
        file.write_all(&crc32(&body).to_le_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Reads and verifies the manifest. `Ok(None)` when the file does not exist
/// (an uninitialized store); any other defect is a typed error — the
/// manifest is written atomically, so corruption means media failure, not a
/// crash window.
pub fn read_manifest(path: &Path) -> Result<Option<ManifestEntries>, DurabilityError> {
    let corrupt =
        |reason: &str| DurabilityError::CorruptManifest(format!("{}: {reason}", path.display()));
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(source) => {
            return Err(DurabilityError::Io {
                context: format!("reading manifest {}", path.display()),
                source,
            })
        }
    };
    if bytes.len() < 8 + 8 + 4 || &bytes[..8] != MAGIC {
        return Err(corrupt("missing or truncated header"));
    }
    let body = &bytes[8..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }
    let num = u64::from_le_bytes(body[..8].try_into().expect("8 bytes")) as usize;
    if body.len() != 8 + 16 * num {
        return Err(corrupt("entry count disagrees with file length"));
    }
    let mut entries = Vec::with_capacity(num);
    for i in 0..num {
        let at = 8 + 16 * i;
        let lower = Key::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"));
        let epoch = u64::from_le_bytes(body[at + 8..at + 16].try_into().expect("8 bytes"));
        entries.push((lower, epoch));
    }
    if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(corrupt("lower bounds not strictly ascending"));
    }
    Ok(Some(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use crate::test_dir;

    #[test]
    fn roundtrip_and_replacement() {
        let dir = test_dir("manifest");
        let path = dir.join(MANIFEST_NAME);
        assert_eq!(read_manifest(&path).unwrap(), None);
        let first = vec![(0u64, 1u64), (500, 2), (900, 3)];
        write_manifest(&path, &first).unwrap();
        assert_eq!(read_manifest(&path).unwrap(), Some(first));
        let second = vec![(0u64, 4u64), (700, 5)];
        write_manifest(&path, &second).unwrap();
        assert_eq!(read_manifest(&path).unwrap(), Some(second));
    }

    #[test]
    fn corruption_is_fatal_and_typed() {
        let dir = test_dir("manifest-corrupt");
        let path = dir.join(MANIFEST_NAME);
        write_manifest(&path, &vec![(0u64, 1u64), (10, 2)]).unwrap();
        Fault::BitFlip { offset: 20, bit: 1 }
            .apply_to(&path)
            .unwrap();
        assert!(matches!(
            read_manifest(&path),
            Err(DurabilityError::CorruptManifest(_))
        ));
    }
}
