//! The file-backed durability store: [`FileSink`] implements the sharded
//! index's [`DurabilitySink`] seam over per-shard checkpoint + WAL files,
//! and [`recover`] rebuilds a [`ShardedIndex`] from a data directory after
//! a crash.
//!
//! On-disk layout (all inside [`DurabilityConfig::data_dir`]):
//!
//! ```text
//! MANIFEST            which (lower_bound, epoch) pairs are live
//! ckpt-<epoch>.ckpt   one shard's folded base at that epoch
//! wal-<epoch>.wal     that shard's writes since the checkpoint
//! ```
//!
//! Epoch files are immutable once the manifest references them. Every
//! checkpoint opens a *new* epoch: write the new checkpoint file, open a
//! fresh (empty) WAL sequenced from the checkpoint's last sequence, replace
//! the manifest atomically, then delete the superseded epoch's files. A
//! crash between any two of those steps leaves a recoverable store — the
//! old manifest still points at the old checkpoint and its complete WAL,
//! and replay over the old checkpoint reproduces exactly the folded state
//! (records are absolute, so replay is idempotent). Stray files from the
//! interrupted transition are garbage-collected by the next transition.
//!
//! [`FileSink`] methods panic on unrecoverable I/O failure: by the time the
//! sink is called the index is about to acknowledge the write, and a sink
//! that cannot persist it must not let the process keep promising
//! durability. The maintenance engine catches and surfaces such panics (see
//! `MaintenanceHandle::shutdown`).

use crate::checkpoint::{read_checkpoint, write_checkpoint_parts};
use crate::fault::Fault;
use crate::manifest::{read_manifest, write_manifest, ManifestEntries, MANIFEST_NAME};
use crate::wal::{read_wal, WalEnd, WalWriter};
use csv_common::sync::{AtomicU64, Mutex, MutexGuard, Ordering};
use csv_common::{Key, KeyValue, LearnedIndex, RangeIndex, Value};
use csv_concurrent::{
    DurabilitySink, ReadPath, RecoveredShard, ShardCheckpoint, ShardedIndex, ShardingConfig,
    StaleSeed, WriteRecord,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When the write-ahead log is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync after every appended record: power-loss durability per
    /// acknowledged write, at the cost of one fsync per write.
    Always,
    /// Fsync only at checkpoints (the default): a crash loses at most the
    /// OS-buffered log tail, which replay degrades past safely; an orderly
    /// process exit loses nothing.
    #[default]
    OnCheckpoint,
    /// Never fsync (benchmarks measuring CPU overhead, not durability).
    Never,
}

/// Configuration for a file-backed durability store.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the manifest, checkpoints and logs.
    pub data_dir: PathBuf,
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Fault injected into every WAL file the store opens (crash tests
    /// only).
    pub wal_fault: Option<Fault>,
}

impl DurabilityConfig {
    /// A config over `data_dir` with the default fsync policy and no
    /// injected faults.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::default(),
            wal_fault: None,
        }
    }

    /// The same config with the given fsync policy.
    pub fn with_fsync(self, fsync: FsyncPolicy) -> Self {
        Self { fsync, ..self }
    }

    /// The same config with a fault injected into every WAL the store
    /// opens.
    pub fn with_wal_fault(self, fault: Fault) -> Self {
        Self {
            wal_fault: Some(fault),
            ..self
        }
    }
}

/// Everything that can go wrong opening or recovering a store.
#[derive(Debug)]
pub enum DurabilityError {
    /// An I/O operation failed.
    Io {
        /// What the store was doing.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// [`recover`] was pointed at a directory with no manifest.
    NotInitialized(PathBuf),
    /// [`FileSink::create`] was pointed at a directory that already holds a
    /// store (recover it instead of overwriting it).
    AlreadyInitialized(PathBuf),
    /// The manifest failed verification. Manifests are written atomically,
    /// so this means media failure, not a crash window.
    CorruptManifest(String),
    /// A checkpoint referenced by the manifest failed verification.
    CorruptCheckpoint {
        /// The offending file.
        path: PathBuf,
        /// What failed.
        reason: String,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { context, source } => write!(f, "i/o error {context}: {source}"),
            DurabilityError::NotInitialized(dir) => {
                write!(f, "no durability store in {}", dir.display())
            }
            DurabilityError::AlreadyInitialized(dir) => write!(
                f,
                "{} already holds a durability store; recover it instead",
                dir.display()
            ),
            DurabilityError::CorruptManifest(reason) => {
                write!(f, "corrupt manifest: {reason}")
            }
            DurabilityError::CorruptCheckpoint { path, reason } => {
                write!(f, "corrupt checkpoint {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One shard's live log state inside the sink.
#[derive(Debug)]
struct ShardLog {
    /// The shard's current epoch (names its checkpoint and WAL files).
    epoch: u64,
    /// Last durable sequence number.
    seq: u64,
    /// Records appended since the last checkpoint.
    backlog: u64,
    /// The open WAL. `None` between recovery and the re-checkpoint that
    /// [`ShardedIndex::from_recovered`] performs immediately — no
    /// `log_write` can arrive in that window because the index is not yet
    /// constructed.
    writer: Option<WalWriter>,
}

#[derive(Debug)]
struct SinkState {
    /// Next epoch number to allocate (strictly above every epoch on disk).
    next_epoch: u64,
    /// Live shards by lower bound.
    shards: BTreeMap<Key, ShardLog>,
}

/// Cumulative counters for reporting ([`FileSink::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Checkpoint files written (including bulk load and recovery).
    pub checkpoints: u64,
    /// WAL records appended.
    pub wal_records: u64,
}

/// The file-backed [`DurabilitySink`]. Create one with [`FileSink::create`]
/// (fresh store) or get one back from [`recover`] (existing store), wrap it
/// in an [`Arc`], and hand it to `ShardedIndex::bulk_load_durable` /
/// `from_recovered`.
pub struct FileSink {
    config: DurabilityConfig,
    state: Mutex<SinkState>,
    checkpoints: AtomicU64,
    wal_records: AtomicU64,
}

impl fmt::Debug for FileSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileSink")
            .field("data_dir", &self.config.data_dir)
            .field("fsync", &self.config.fsync)
            .finish_non_exhaustive()
    }
}

/// Unwraps a sink-internal I/O result; failure panics with context (see the
/// module docs for why the sink cannot return errors to the write path).
fn fatal<T>(result: io::Result<T>, context: &str) -> T {
    result.unwrap_or_else(|e| panic!("durability sink failed while {context}: {e}"))
}

impl FileSink {
    /// Opens a *fresh* store in `config.data_dir`, creating the directory
    /// if needed. Fails with [`DurabilityError::AlreadyInitialized`] when a
    /// manifest is already present.
    pub fn create(config: DurabilityConfig) -> Result<Self, DurabilityError> {
        std::fs::create_dir_all(&config.data_dir).map_err(|source| DurabilityError::Io {
            context: format!("creating data dir {}", config.data_dir.display()),
            source,
        })?;
        if config.data_dir.join(MANIFEST_NAME).exists() {
            return Err(DurabilityError::AlreadyInitialized(config.data_dir.clone()));
        }
        Ok(Self::with_state(config, 1, BTreeMap::new()))
    }

    fn with_state(
        config: DurabilityConfig,
        next_epoch: u64,
        shards: BTreeMap<Key, ShardLog>,
    ) -> Self {
        Self {
            config,
            state: Mutex::new(SinkState { next_epoch, shards }),
            checkpoints: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
        }
    }

    /// Cumulative I/O counters.
    pub fn stats(&self) -> SinkStats {
        SinkStats {
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
        }
    }

    /// The store's data directory.
    pub fn data_dir(&self) -> &Path {
        &self.config.data_dir
    }

    fn lock(&self) -> MutexGuard<'_, SinkState> {
        self.state.lock()
    }

    fn ckpt_path(&self, epoch: u64) -> PathBuf {
        self.config.data_dir.join(format!("ckpt-{epoch}.ckpt"))
    }

    fn wal_path(&self, epoch: u64) -> PathBuf {
        self.config.data_dir.join(format!("wal-{epoch}.wal"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.config.data_dir.join(MANIFEST_NAME)
    }

    /// The durable layout transition shared by `checkpoint` and
    /// `replace_shards`: write each created shard's checkpoint + fresh WAL
    /// under a new epoch, drop retired shards, atomically republish the
    /// manifest, then garbage-collect everything it no longer references.
    fn transition(
        &self,
        state: &mut SinkState,
        retired: &[Key],
        created: &[ShardCheckpoint],
    ) -> io::Result<()> {
        for checkpoint in created {
            let epoch = state.next_epoch;
            state.next_epoch += 1;
            let prev_seq = state
                .shards
                .get(&checkpoint.lower_bound)
                .map_or(0, |log| log.seq);
            let last_seq = prev_seq + checkpoint.absorbed;
            write_checkpoint_parts(
                &self.ckpt_path(epoch),
                checkpoint.lower_bound,
                last_seq,
                checkpoint.stale,
                &checkpoint.records,
            )?;
            let writer = WalWriter::create(&self.wal_path(epoch), last_seq, self.config.wal_fault)?;
            state.shards.insert(
                checkpoint.lower_bound,
                ShardLog {
                    epoch,
                    seq: last_seq,
                    backlog: 0,
                    writer: Some(writer),
                },
            );
            self.checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        for lower in retired {
            state.shards.remove(lower);
        }
        let entries: ManifestEntries = state
            .shards
            .iter()
            .map(|(&lower, log)| (lower, log.epoch))
            .collect();
        write_manifest(&self.manifest_path(), &entries)?;
        self.collect_garbage(state)
    }

    /// Deletes epoch files the manifest no longer references, plus stray
    /// temp files from interrupted atomic writes. Failure to delete is not
    /// fatal — stray files are re-collected on the next transition.
    fn collect_garbage(&self, state: &SinkState) -> io::Result<()> {
        let live: BTreeSet<u64> = state.shards.values().map(|log| log.epoch).collect();
        for entry in std::fs::read_dir(&self.config.data_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = match parse_epoch_file(name) {
                Some(epoch) => !live.contains(&epoch),
                None => name.ends_with(".tmp"),
            };
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(())
    }
}

/// Parses `ckpt-<epoch>.ckpt` / `wal-<epoch>.wal` file names.
fn parse_epoch_file(name: &str) -> Option<u64> {
    let epoch = name
        .strip_prefix("ckpt-")
        .and_then(|rest| rest.strip_suffix(".ckpt"))
        .or_else(|| {
            name.strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".wal"))
        })?;
    epoch.parse().ok()
}

impl DurabilitySink for FileSink {
    fn log_write(&self, shard: Key, key: Key, value: Option<Value>) {
        let mut state = self.lock();
        let log = state
            .shards
            .get_mut(&shard)
            .expect("log_write for a shard the sink has never checkpointed");
        let writer = log
            .writer
            .as_mut()
            .expect("log_write before the recovered shard was re-checkpointed");
        let seq = fatal(writer.append(key, value), "appending to the shard log");
        if self.config.fsync == FsyncPolicy::Always {
            fatal(writer.sync(), "syncing the shard log");
        }
        log.seq = seq;
        log.backlog += 1;
        self.wal_records.fetch_add(1, Ordering::Relaxed);
    }

    fn log_writes(&self, shard: Key, records: &[WriteRecord]) {
        if records.is_empty() {
            return;
        }
        let mut state = self.lock();
        let log = state
            .shards
            .get_mut(&shard)
            .expect("log_writes for a shard the sink has never checkpointed");
        let writer = log
            .writer
            .as_mut()
            .expect("log_writes before the recovered shard was re-checkpointed");
        let seq = fatal(
            writer.append_batch(records),
            "appending a group commit to the shard log",
        );
        if self.config.fsync == FsyncPolicy::Always {
            fatal(writer.sync(), "syncing the shard log");
        }
        log.seq = seq;
        log.backlog += records.len() as u64;
        self.wal_records
            .fetch_add(records.len() as u64, Ordering::Relaxed);
    }

    fn checkpoint(&self, checkpoint: &ShardCheckpoint) {
        let mut state = self.lock();
        fatal(
            self.transition(&mut state, &[], std::slice::from_ref(checkpoint)),
            "checkpointing a shard",
        );
    }

    fn replace_shards(&self, retired: &[Key], created: &[ShardCheckpoint]) {
        let mut state = self.lock();
        fatal(
            self.transition(&mut state, retired, created),
            "replacing shards in the durable layout",
        );
    }

    fn backlog(&self, shard: Key) -> u64 {
        self.lock().shards.get(&shard).map_or(0, |log| log.backlog)
    }
}

/// How one shard's recovery went.
#[derive(Debug, Clone)]
pub struct ShardRecovery {
    /// The shard's lower bound.
    pub lower_bound: Key,
    /// WAL records replayed over the checkpoint.
    pub replayed: u64,
    /// The shard's last durable sequence number after replay.
    pub last_seq: u64,
    /// How the shard's WAL ended (anything but `Clean` means the tail was
    /// degraded past — expected after a crash, alarming after an orderly
    /// shutdown).
    pub wal_end: WalEnd,
}

/// What [`recover`] did, for operator reporting.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Per-shard outcomes, sorted by lower bound.
    pub shards: Vec<ShardRecovery>,
    /// Total live keys in the recovered index.
    pub keys: usize,
    /// Wall-clock recovery time, measured up to (not including) the
    /// re-checkpoint that re-opens the store for writing.
    pub elapsed: Duration,
}

impl RecoveryReport {
    /// Total WAL records replayed across shards.
    pub fn replayed(&self) -> u64 {
        self.shards.iter().map(|shard| shard.replayed).sum()
    }

    /// Shards whose WAL did not end cleanly.
    pub fn torn_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|shard| shard.wal_end.is_torn())
            .count()
    }
}

/// A recovered store: the rebuilt index (durability re-attached), the sink
/// backing it, and a report of what replay found.
pub struct Recovered<I> {
    /// The rebuilt index, already re-checkpointed under fresh epochs.
    pub index: ShardedIndex<I>,
    /// The sink backing `index` (for [`FileSink::stats`]).
    pub sink: Arc<FileSink>,
    /// What recovery did.
    pub report: RecoveryReport,
}

/// Rebuilds a [`ShardedIndex`] from the store in `config.data_dir`.
///
/// For every shard in the manifest: load and verify its checkpoint (a
/// corrupt checkpoint is fatal — it is the shard's base state), then replay
/// the longest valid prefix of its WAL (a torn or corrupt tail is degraded
/// past silently — those records were never acknowledged as durable, or fell
/// inside the crash window). Staleness counters are re-armed from the
/// checkpointed seed plus the structural effect of replay, so the
/// maintenance engine resumes its adaptive loop instead of restarting cold.
///
/// The recovered state is immediately re-checkpointed under fresh epochs
/// (via `ShardedIndex::from_recovered`), so the returned index's sink is
/// fully armed: WALs open, old epochs collected.
pub fn recover<I: LearnedIndex + RangeIndex>(
    config: DurabilityConfig,
    sharding: ShardingConfig,
) -> Result<Recovered<I>, DurabilityError> {
    let started = Instant::now();
    let sharding = sharding.with_read_path(ReadPath::Rcu);
    let manifest_path = config.data_dir.join(MANIFEST_NAME);
    let Some(entries) = read_manifest(&manifest_path)? else {
        return Err(DurabilityError::NotInitialized(config.data_dir.clone()));
    };
    if entries.is_empty() {
        return Err(DurabilityError::CorruptManifest(format!(
            "{}: no shards",
            manifest_path.display()
        )));
    }
    // Stray epoch files from an interrupted transition may outnumber the
    // manifest's: the next epoch must clear them all.
    let mut max_epoch = entries.iter().map(|&(_, epoch)| epoch).max().unwrap_or(0);
    if let Ok(dir) = std::fs::read_dir(&config.data_dir) {
        for entry in dir.flatten() {
            if let Some(epoch) = entry.file_name().to_str().and_then(parse_epoch_file) {
                max_epoch = max_epoch.max(epoch);
            }
        }
    }
    let mut shards = Vec::with_capacity(entries.len());
    let mut logs = BTreeMap::new();
    let mut report_shards = Vec::with_capacity(entries.len());
    let mut keys = 0usize;
    for &(lower, epoch) in &entries {
        let ckpt_path = config.data_dir.join(format!("ckpt-{epoch}.ckpt"));
        let checkpoint = read_checkpoint(&ckpt_path)?;
        if checkpoint.lower_bound != lower {
            return Err(DurabilityError::CorruptCheckpoint {
                path: ckpt_path,
                reason: format!(
                    "lower bound {} disagrees with manifest entry {lower}",
                    checkpoint.lower_bound
                ),
            });
        }
        let wal_path = config.data_dir.join(format!("wal-{epoch}.wal"));
        let replay = read_wal(&wal_path).map_err(|source| DurabilityError::Io {
            context: format!("reading log {}", wal_path.display()),
            source,
        })?;
        let mut map: BTreeMap<Key, Value> = checkpoint
            .records
            .iter()
            .map(|record| (record.key, record.value))
            .collect();
        let mut end = replay.end;
        let mut structural = 0usize;
        let mut replayed = 0u64;
        let header_usable = !matches!(replay.end, WalEnd::Missing | WalEnd::CorruptHeader);
        if header_usable && replay.start_seq != checkpoint.last_seq {
            // The log belongs to a different incarnation of the shard than
            // the checkpoint claims; trusting it could invent data.
            end = WalEnd::CorruptHeader;
        } else {
            for record in &replay.records {
                replayed += 1;
                let changed = match record.value {
                    Some(value) => map.insert(record.key, value).is_none(),
                    None => map.remove(&record.key).is_some(),
                };
                structural += usize::from(changed);
            }
        }
        let last_seq = checkpoint.last_seq + replayed;
        keys += map.len();
        shards.push(RecoveredShard {
            lower_bound: lower,
            records: map
                .into_iter()
                .map(|(key, value)| KeyValue::new(key, value))
                .collect(),
            stale: StaleSeed {
                writes: checkpoint.stale.writes + structural,
                maintained: checkpoint.stale.maintained,
                mean_level: checkpoint.stale.mean_level,
            },
        });
        logs.insert(
            lower,
            ShardLog {
                epoch,
                seq: last_seq,
                backlog: 0,
                // Re-opened by the re-checkpoint below; the index does not
                // exist yet, so no log_write can race this window.
                writer: None,
            },
        );
        report_shards.push(ShardRecovery {
            lower_bound: lower,
            replayed,
            last_seq,
            wal_end: end,
        });
    }
    let report = RecoveryReport {
        shards: report_shards,
        keys,
        elapsed: started.elapsed(),
    };
    let sink = Arc::new(FileSink::with_state(config, max_epoch + 1, logs));
    let index = ShardedIndex::from_recovered(shards, sharding, Some(sink.clone()));
    Ok(Recovered {
        index,
        sink,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use csv_btree::BPlusTree;

    fn sample_records(n: u64) -> Vec<KeyValue> {
        (0..n).map(|i| KeyValue::new(i * 10, i)).collect()
    }

    fn sharding(shards: usize) -> ShardingConfig {
        ShardingConfig::with_shards(shards).with_read_path(ReadPath::Rcu)
    }

    #[test]
    fn create_then_recover_roundtrips_bulk_state() {
        let dir = test_dir("store-roundtrip");
        let records = sample_records(500);
        {
            let sink = Arc::new(FileSink::create(DurabilityConfig::new(&dir)).unwrap());
            let index: ShardedIndex<BPlusTree> =
                ShardedIndex::bulk_load_durable(&records, sharding(4), sink);
            drop(index); // crash: no orderly shutdown exists, none is needed
        }
        let recovered: Recovered<BPlusTree> =
            recover(DurabilityConfig::new(&dir), sharding(4)).unwrap();
        assert_eq!(recovered.report.keys, 500);
        assert_eq!(recovered.report.replayed(), 0);
        assert_eq!(recovered.report.torn_shards(), 0);
        for record in &records {
            assert_eq!(recovered.index.get(record.key), Some(record.value));
        }
        assert_eq!(recovered.index.range(0, Key::MAX), records);
    }

    #[test]
    fn logged_writes_survive_a_crash() {
        let dir = test_dir("store-wal-replay");
        {
            let sink = Arc::new(FileSink::create(DurabilityConfig::new(&dir)).unwrap());
            let index: ShardedIndex<BPlusTree> =
                ShardedIndex::bulk_load_durable(&sample_records(100), sharding(2), sink);
            index.insert(5, 555);
            index.insert(990, 999);
            assert!(index.remove(500).is_some());
            drop(index);
        }
        let recovered: Recovered<BPlusTree> =
            recover(DurabilityConfig::new(&dir), sharding(2)).unwrap();
        assert!(recovered.report.replayed() >= 3);
        assert_eq!(recovered.index.get(5), Some(555));
        assert_eq!(recovered.index.get(990), Some(999));
        assert_eq!(recovered.index.get(500), None);
        // 100 bulk keys, plus new key 5, minus removed key 500 (990 was an
        // overwrite).
        assert_eq!(recovered.report.keys, 100);
    }

    #[test]
    fn recovering_twice_is_stable() {
        let dir = test_dir("store-twice");
        {
            let sink = Arc::new(FileSink::create(DurabilityConfig::new(&dir)).unwrap());
            let index: ShardedIndex<BPlusTree> =
                ShardedIndex::bulk_load_durable(&sample_records(64), sharding(2), sink);
            index.insert(1, 11);
        }
        let first: Recovered<BPlusTree> =
            recover(DurabilityConfig::new(&dir), sharding(2)).unwrap();
        let state = first.index.range(0, Key::MAX);
        drop(first);
        let second: Recovered<BPlusTree> =
            recover(DurabilityConfig::new(&dir), sharding(2)).unwrap();
        assert_eq!(second.index.range(0, Key::MAX), state);
        assert_eq!(second.report.replayed(), 0, "re-checkpoint left no backlog");
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let dir = test_dir("store-exists");
        {
            let sink = Arc::new(FileSink::create(DurabilityConfig::new(&dir)).unwrap());
            let _index: ShardedIndex<BPlusTree> =
                ShardedIndex::bulk_load_durable(&sample_records(10), sharding(1), sink);
        }
        assert!(matches!(
            FileSink::create(DurabilityConfig::new(&dir)),
            Err(DurabilityError::AlreadyInitialized(_))
        ));
    }

    #[test]
    fn recover_refuses_an_empty_directory() {
        let dir = test_dir("store-empty");
        assert!(matches!(
            recover::<BPlusTree>(DurabilityConfig::new(&dir), sharding(1)),
            Err(DurabilityError::NotInitialized(_))
        ));
    }

    #[test]
    fn checkpoints_truncate_the_log_and_collect_old_epochs() {
        let dir = test_dir("store-gc");
        let sink = Arc::new(FileSink::create(DurabilityConfig::new(&dir)).unwrap());
        let index: ShardedIndex<BPlusTree> =
            ShardedIndex::bulk_load_durable(&sample_records(100), sharding(1), sink.clone());
        for i in 0..10u64 {
            index.insert(i * 10 + 1, i);
        }
        assert_eq!(sink.backlog(0), 10);
        let retired = index.checkpoint_shard(0).expect("backlog to retire");
        assert_eq!(retired, 10);
        assert_eq!(sink.backlog(0), 0);
        // Exactly one live epoch pair (plus the manifest) remains on disk.
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|entry| entry.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names.len(), 3, "unexpected files: {names:?}");
        assert!(names.contains(&MANIFEST_NAME.to_string()));
    }

    #[test]
    fn splits_and_merges_transition_the_manifest() {
        let dir = test_dir("store-split-merge");
        let sink = Arc::new(FileSink::create(DurabilityConfig::new(&dir)).unwrap());
        let index: ShardedIndex<BPlusTree> =
            ShardedIndex::bulk_load_durable(&sample_records(200), sharding(2), sink.clone());
        assert!(index.split_shard(0, 2));
        let entries = read_manifest(&dir.join(MANIFEST_NAME)).unwrap().unwrap();
        assert_eq!(entries.len(), 3);
        assert!(index.merge_shards(0, usize::MAX));
        let entries = read_manifest(&dir.join(MANIFEST_NAME)).unwrap().unwrap();
        assert_eq!(entries.len(), 2);
        // The durable layout still recovers to the full key set.
        drop(index);
        drop(sink);
        let recovered: Recovered<BPlusTree> =
            recover(DurabilityConfig::new(&dir), sharding(2)).unwrap();
        assert_eq!(recovered.index.range(0, Key::MAX), sample_records(200));
    }
}
