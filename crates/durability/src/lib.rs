//! Crash-safe durability for the sharded CSV-maintained index.
//!
//! This crate is the file-backed implementation of the `DurabilitySink`
//! seam that `csv_concurrent` exposes on its RCU write path. Each shard
//! gets two files: a **checkpoint** — its folded base, written atomically
//! at the fold points the index already pays for (overlay fold,
//! maintenance pass, split/merge) — and a **write-ahead log** of the point
//! writes since, appended before each write's snapshot is published. A
//! `MANIFEST` names which epoch of each pair is live. After a crash,
//! [`recover`] rebuilds the index from checkpoints plus
//! the longest valid WAL prefixes, tolerating torn and corrupt tails
//! without ever replaying unacknowledged data, and re-arms the maintenance
//! engine's staleness counters so the adaptive loop resumes warm.
//!
//! The [`fault`] module is the testing half of the design: a file handle
//! that tears, truncates and bit-flips on command, driving the
//! crash-recovery property tests in `tests/crash_recovery.rs`.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod crc;
pub mod fault;
pub mod manifest;
pub mod store;
pub mod wal;

pub use checkpoint::{read_checkpoint, write_checkpoint, Checkpoint};
pub use fault::{Fault, FaultFile};
pub use manifest::{read_manifest, write_manifest, ManifestEntries, MANIFEST_NAME};
pub use store::{
    recover, DurabilityConfig, DurabilityError, FileSink, FsyncPolicy, Recovered, RecoveryReport,
    ShardRecovery, SinkStats,
};
pub use wal::{read_wal, WalEnd, WalRecord, WalReplay, WalWriter};

/// A unique, empty temp directory for one test.
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> std::path::PathBuf {
    use csv_common::sync::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("csv-durability-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating the test dir");
    dir
}
