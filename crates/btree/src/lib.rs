//! A classic in-memory B+-tree, used as the traditional baseline index that
//! the paper's learned indexes are compared against (§6.1 notes that ALEX,
//! LIPP and SALI all outperform the B+-tree; we reproduce it so the benches
//! can show the same ordering).
//!
//! The tree is arena-allocated: nodes live in a `Vec` and children are
//! referenced by index, which keeps the structure cache-friendly and makes
//! level-of-key queries trivial.

#![forbid(unsafe_code)]

mod node;

pub use node::BPlusTree;

#[cfg(test)]
mod proptests {
    use super::BPlusTree;
    use csv_common::key::identity_records;
    use csv_common::traits::LearnedIndex;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Bulk-loaded trees answer every membership query like a sorted vec.
        #[test]
        fn lookup_matches_oracle(mut keys in prop::collection::vec(0u64..1_000_000, 1..400)) {
            keys.sort_unstable();
            keys.dedup();
            let tree = BPlusTree::bulk_load(&identity_records(&keys));
            prop_assert_eq!(tree.len(), keys.len());
            for &k in &keys {
                prop_assert_eq!(tree.get(k), Some(k));
            }
            for probe in [0u64, 17, 999_999, 1_000_001] {
                let expected = keys.binary_search(&probe).is_ok();
                prop_assert_eq!(tree.get(probe).is_some(), expected);
            }
        }

        /// Random insert sequences keep the tree consistent with a BTreeMap.
        #[test]
        fn inserts_match_btreemap(ops in prop::collection::vec((0u64..10_000, 0u64..1000), 1..300)) {
            let mut tree = BPlusTree::bulk_load(&[]);
            let mut oracle = std::collections::BTreeMap::new();
            for (k, v) in ops {
                tree.insert(k, v);
                oracle.insert(k, v);
            }
            prop_assert_eq!(tree.len(), oracle.len());
            for (&k, &v) in &oracle {
                prop_assert_eq!(tree.get(k), Some(v));
            }
        }
    }
}
