//! B+-tree node layout and operations.

use core::ops::ControlFlow;
use csv_common::metrics::CostCounters;
use csv_common::traits::{
    IndexStats, LearnedIndex, LevelHistogram, RangeIndex, RemovableIndex, SnapshotIndex,
};
use csv_common::{Key, KeyValue, Value};

/// Maximum number of entries in a leaf / children in an internal node.
const DEFAULT_FANOUT: usize = 64;

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// `separators[i]` is the smallest key of `children[i + 1]`'s subtree.
        separators: Vec<Key>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<Key>,
        values: Vec<Value>,
    },
}

/// An order-`FANOUT` in-memory B+-tree with arena-allocated nodes.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
    fanout: usize,
}

impl BPlusTree {
    /// Builds a tree with a custom fanout.
    pub fn with_fanout(records: &[KeyValue], fanout: usize) -> Self {
        assert!(fanout >= 4, "fanout must be at least 4");
        let mut tree = Self {
            nodes: Vec::new(),
            root: 0,
            len: 0,
            fanout,
        };
        tree.build(records);
        tree
    }

    fn build(&mut self, records: &[KeyValue]) {
        self.nodes.clear();
        self.len = records.len();
        if records.is_empty() {
            self.root = self.push(Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            });
            return;
        }
        // Build the leaf level at ~2/3 occupancy so bulk-loaded trees still
        // absorb inserts without immediate splits.
        let per_leaf = (self.fanout * 2 / 3).max(2);
        let mut level: Vec<(Key, usize)> = Vec::new();
        for chunk in records.chunks(per_leaf) {
            let keys: Vec<Key> = chunk.iter().map(|r| r.key).collect();
            let values: Vec<Value> = chunk.iter().map(|r| r.value).collect();
            let min_key = keys[0];
            let id = self.push(Node::Leaf { keys, values });
            level.push((min_key, id));
        }
        // Build internal levels until a single root remains.
        while level.len() > 1 {
            let mut next: Vec<(Key, usize)> = Vec::new();
            for chunk in level.chunks(self.fanout) {
                let children: Vec<usize> = chunk.iter().map(|&(_, id)| id).collect();
                let separators: Vec<Key> = chunk.iter().skip(1).map(|&(k, _)| k).collect();
                let min_key = chunk[0].0;
                let id = self.push(Node::Internal {
                    separators,
                    children,
                });
                next.push((min_key, id));
            }
            level = next;
        }
        self.root = level[0].1;
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Height of the tree in levels (1 = a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal { children, .. } => {
                    node = children[0];
                    h += 1;
                }
                Node::Leaf { .. } => return h,
            }
        }
    }

    fn descend(&self, key: Key, counters: Option<&mut CostCounters>) -> usize {
        let mut node = self.root;
        let mut visited = 0usize;
        let mut comparisons = 0usize;
        loop {
            visited += 1;
            match &self.nodes[node] {
                Node::Internal {
                    separators,
                    children,
                } => {
                    let idx = separators.partition_point(|&s| s <= key);
                    comparisons += (separators.len().max(1)).ilog2() as usize + 1;
                    node = children[idx];
                }
                Node::Leaf { .. } => {
                    if let Some(c) = counters {
                        c.nodes_visited += visited;
                        c.comparisons += comparisons;
                    }
                    return node;
                }
            }
        }
    }

    fn split_leaf_if_needed(&mut self, leaf: usize) -> Option<(Key, usize)> {
        let fanout = self.fanout;
        let (new_keys, new_values) = match &mut self.nodes[leaf] {
            Node::Leaf { keys, values } if keys.len() > fanout => {
                let mid = keys.len() / 2;
                (keys.split_off(mid), values.split_off(mid))
            }
            _ => return None,
        };
        let split_key = new_keys[0];
        let new_leaf = self.push(Node::Leaf {
            keys: new_keys,
            values: new_values,
        });
        Some((split_key, new_leaf))
    }
}

impl LearnedIndex for BPlusTree {
    fn name(&self) -> &'static str {
        "B+Tree"
    }

    fn bulk_load(records: &[KeyValue]) -> Self {
        Self::with_fanout(records, DEFAULT_FANOUT)
    }

    fn get(&self, key: Key) -> Option<Value> {
        let leaf = self.descend(key, None);
        match &self.nodes[leaf] {
            Node::Leaf { keys, values } => keys.binary_search(&key).ok().map(|i| values[i]),
            Node::Internal { .. } => unreachable!("descend always ends at a leaf"),
        }
    }

    fn get_counted(&self, key: Key, counters: &mut CostCounters) -> Option<Value> {
        let leaf = self.descend(key, Some(counters));
        match &self.nodes[leaf] {
            Node::Leaf { keys, values } => {
                counters.comparisons += (keys.len().max(1)).ilog2() as usize + 1;
                keys.binary_search(&key).ok().map(|i| values[i])
            }
            Node::Internal { .. } => unreachable!("descend always ends at a leaf"),
        }
    }

    fn insert(&mut self, key: Key, value: Value) -> bool {
        // Descend remembering the path so splits can be propagated.
        let mut path = Vec::new();
        let mut node = self.root;
        while let Node::Internal {
            separators,
            children,
        } = &self.nodes[node]
        {
            let idx = separators.partition_point(|&s| s <= key);
            path.push((node, idx));
            node = children[idx];
        }
        let inserted = match &mut self.nodes[node] {
            Node::Leaf { keys, values } => match keys.binary_search(&key) {
                Ok(i) => {
                    values[i] = value;
                    false
                }
                Err(i) => {
                    keys.insert(i, key);
                    values.insert(i, value);
                    true
                }
            },
            Node::Internal { .. } => unreachable!(),
        };
        if inserted {
            self.len += 1;
        }
        // Propagate splits up the path.
        let mut split = self.split_leaf_if_needed(node);
        while let Some((sep_key, new_child)) = split {
            match path.pop() {
                Some((parent, idx)) => {
                    let fanout = self.fanout;
                    let needs_split = match &mut self.nodes[parent] {
                        Node::Internal {
                            separators,
                            children,
                        } => {
                            separators.insert(idx, sep_key);
                            children.insert(idx + 1, new_child);
                            separators.len() + 1 > fanout
                        }
                        Node::Leaf { .. } => unreachable!(),
                    };
                    split = if needs_split {
                        let (new_seps, new_children, promote) = match &mut self.nodes[parent] {
                            Node::Internal {
                                separators,
                                children,
                            } => {
                                let mid = separators.len() / 2;
                                let promote = separators[mid];
                                let right_seps = separators.split_off(mid + 1);
                                separators.pop();
                                let right_children = children.split_off(mid + 1);
                                (right_seps, right_children, promote)
                            }
                            Node::Leaf { .. } => unreachable!(),
                        };
                        let new_internal = self.push(Node::Internal {
                            separators: new_seps,
                            children: new_children,
                        });
                        Some((promote, new_internal))
                    } else {
                        None
                    };
                }
                None => {
                    // Split reached the root: grow the tree by one level.
                    let old_root = self.root;
                    let new_root = self.push(Node::Internal {
                        separators: vec![sep_key],
                        children: vec![old_root, new_child],
                    });
                    self.root = new_root;
                    split = None;
                }
            }
        }
        inserted
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> IndexStats {
        let height = self.height();
        let mut histogram = LevelHistogram::new();
        // Every key lives in a leaf, i.e. at the bottom level.
        if self.len > 0 {
            histogram.record(height, self.len);
        }
        let size_bytes: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::Internal {
                    separators,
                    children,
                } => separators.len() * 8 + children.len() * 8 + 48,
                Node::Leaf { keys, values } => keys.len() * 8 + values.len() * 8 + 48,
            })
            .sum();
        IndexStats {
            level_histogram: histogram,
            node_count: self.nodes.len(),
            deep_node_count: if height >= 3 { self.nodes.len() } else { 0 },
            height,
            size_bytes,
            num_keys: self.len,
        }
    }

    fn level_of_key(&self, key: Key) -> Option<usize> {
        if self.get(key).is_some() {
            Some(self.height())
        } else {
            None
        }
    }

    fn prefetch_key(&self, key: Key) {
        // One root routing step (root separators are hot across a batch),
        // one prefetch of the routed child's node header. A full `descend`
        // here would stall on the same dependent loads the resolve pays —
        // prefetching must stay non-blocking to overlap anything.
        if let Node::Internal {
            separators,
            children,
        } = &self.nodes[self.root]
        {
            let child = children[separators.partition_point(|&s| s <= key)];
            csv_common::prefetch_slice_at(&self.nodes, child);
        }
    }
}

impl RangeIndex for BPlusTree {
    fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        let mut out = Vec::new();
        let _ = self.range_visit(lo, hi, &mut |k, v| {
            out.push(KeyValue::new(k, v));
            ControlFlow::Continue(())
        });
        out
    }

    fn range_visit(
        &self,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if lo > hi {
            return ControlFlow::Continue(());
        }
        self.visit_node(self.root, lo, hi, f)
    }
}

/// Snapshot audit: `derive(Clone)` deep-copies the node arena (every
/// internal node owns its key/child `Vec`s, every leaf its key/value
/// `Vec`s) plus the root/len/fanout scalars — a pure O(keys) copy with no
/// shared state.
impl SnapshotIndex for BPlusTree {}

impl RemovableIndex for BPlusTree {
    fn remove(&mut self, key: Key) -> Option<Value> {
        // Leaves never merge after a removal; the tree stays correct but may
        // hold under-full leaves, which is acceptable for a read-heavy
        // baseline (the same simplification the SOSD-style benchmarks make).
        let leaf = self.descend(key, None);
        let removed = match &mut self.nodes[leaf] {
            Node::Leaf { keys, values } => match keys.binary_search(&key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(values.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { .. } => unreachable!("descend always ends at a leaf"),
        };
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }
}

impl BPlusTree {
    /// Streams every record of `node_id`'s sub-tree whose key is in
    /// `[lo, hi]` to `f`, pruning children whose separator ranges cannot
    /// overlap. Candidate children and leaf slots are bounded by partition
    /// points, so a `Break` can only originate from the visitor and
    /// propagates unchanged.
    fn visit_node(
        &self,
        node_id: usize,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        match &self.nodes[node_id] {
            Node::Internal {
                separators,
                children,
            } => {
                // Child `i` covers keys in [separators[i-1], separators[i]).
                let first = separators.partition_point(|&s| s <= lo);
                let last = separators.partition_point(|&s| s <= hi);
                for &child in &children[first..=last.min(children.len() - 1)] {
                    self.visit_node(child, lo, hi, f)?;
                }
            }
            Node::Leaf { keys, values } => {
                let start = keys.partition_point(|&k| k < lo);
                let end = keys.partition_point(|&k| k <= hi);
                for i in start..end {
                    f(keys[i], values[i])?;
                }
            }
        }
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_common::key::identity_records;

    fn keys(n: u64, stride: u64) -> Vec<Key> {
        (0..n).map(|i| i * stride + 3).collect()
    }

    #[test]
    fn range_scans_match_oracle() {
        let ks = keys(20_000, 7);
        let tree = BPlusTree::bulk_load(&identity_records(&ks));
        // Full range.
        let all = tree.range(0, u64::MAX);
        assert_eq!(all.len(), ks.len());
        assert!(all.windows(2).all(|w| w[0].key < w[1].key));
        // Interior ranges at several offsets and widths.
        for (i, width) in [(100usize, 500u64), (7_777, 3), (19_990, 100_000)] {
            let lo = ks[i];
            let hi = lo + width * 7;
            let got = tree.range(lo, hi);
            let expected: Vec<Key> = ks.iter().copied().filter(|&k| k >= lo && k <= hi).collect();
            assert_eq!(got.iter().map(|r| r.key).collect::<Vec<_>>(), expected);
            assert_eq!(tree.count_range(lo, hi), expected.len());
        }
        // Empty and inverted ranges.
        assert!(tree.range(1, 2).is_empty());
        assert!(tree.range(500, 400).is_empty());
    }

    #[test]
    fn removals_match_oracle() {
        let ks = keys(5_000, 5);
        let mut tree = BPlusTree::bulk_load(&identity_records(&ks));
        // Remove every third key.
        let mut removed = 0usize;
        for &k in ks.iter().step_by(3) {
            assert_eq!(tree.remove(k), Some(k));
            removed += 1;
        }
        assert_eq!(tree.len(), ks.len() - removed);
        // Removed keys are gone, the rest stay, double-removal returns None.
        for (i, &k) in ks.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(tree.get(k), None);
                assert_eq!(tree.remove(k), None);
            } else {
                assert_eq!(tree.get(k), Some(k));
            }
        }
        // Remove + reinsert round-trips.
        assert!(tree.insert(ks[0], 42));
        assert_eq!(tree.get(ks[0]), Some(42));
    }

    #[test]
    fn bulk_load_and_lookup() {
        let ks = keys(10_000, 7);
        let tree = BPlusTree::bulk_load(&identity_records(&ks));
        assert_eq!(tree.len(), ks.len());
        assert_eq!(tree.name(), "B+Tree");
        assert!(tree.height() >= 2);
        for &k in ks.iter().step_by(97) {
            assert_eq!(tree.get(k), Some(k));
            assert_eq!(tree.get(k + 1), None);
        }
        assert_eq!(tree.level_of_key(ks[42]), Some(tree.height()));
        assert_eq!(tree.level_of_key(1), None);
    }

    #[test]
    fn empty_tree_behaves() {
        let mut tree = BPlusTree::bulk_load(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.get(5), None);
        assert!(tree.insert(5, 50));
        assert!(!tree.insert(5, 51));
        assert_eq!(tree.get(5), Some(51));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn inserts_trigger_splits_and_grow_height() {
        let mut tree = BPlusTree::with_fanout(&[], 4);
        for k in 0..1000u64 {
            assert!(tree.insert(k * 2, k));
        }
        assert_eq!(tree.len(), 1000);
        assert!(tree.height() >= 4, "small fanout must force a tall tree");
        for k in 0..1000u64 {
            assert_eq!(tree.get(k * 2), Some(k));
            assert_eq!(tree.get(k * 2 + 1), None);
        }
    }

    #[test]
    fn counted_lookups_charge_costs() {
        let ks = keys(50_000, 3);
        let tree = BPlusTree::bulk_load(&identity_records(&ks));
        let mut counters = CostCounters::new();
        assert_eq!(
            tree.get_counted(ks[12_345], &mut counters),
            Some(ks[12_345])
        );
        assert!(counters.nodes_visited >= tree.height());
        assert!(counters.comparisons > 0);
    }

    #[test]
    fn stats_report_structure() {
        let ks = keys(20_000, 5);
        let tree = BPlusTree::bulk_load(&identity_records(&ks));
        let stats = tree.stats();
        assert_eq!(stats.num_keys, 20_000);
        assert_eq!(stats.height, tree.height());
        assert!(stats.node_count > 20_000 / 64);
        assert!(stats.size_bytes > 20_000 * 16);
        assert_eq!(stats.level_histogram.total(), 20_000);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn tiny_fanout_rejected() {
        BPlusTree::with_fanout(&[], 2);
    }
}
