//! A PGM-index baseline: recursive ε-bounded piecewise linear models.
//!
//! The PGM index [Ferragina & Vinciguerra, VLDB 2020] approximates the key
//! CDF with the minimum number of ε-error linear segments, then recursively
//! indexes the segments' first keys with the same construction until a single
//! segment remains. A lookup descends the levels, each time predicting a
//! position and binary-searching a `±ε` window. The paper lists the PGM index
//! among the learned-index baselines that ALEX/LIPP/SALI outperform; it is
//! also the segmentation SALI reuses when flattening hot sub-trees.
//!
//! Inserts are handled with a simple buffer-and-rebuild strategy (a sorted
//! delta buffer consulted on every lookup and merged into the static
//! structure once it exceeds a fraction of the indexed data), which is the
//! standard way to dynamise a static learned index.

#![forbid(unsafe_code)]

mod index;

pub use index::{PgmConfig, PgmIndex};

#[cfg(test)]
mod proptests {
    use super::PgmIndex;
    use csv_common::key::identity_records;
    use csv_common::traits::LearnedIndex;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every bulk-loaded key is found; absent keys are not.
        #[test]
        fn lookup_matches_oracle(mut keys in prop::collection::vec(0u64..5_000_000, 1..500)) {
            keys.sort_unstable();
            keys.dedup();
            let index = PgmIndex::bulk_load(&identity_records(&keys));
            for &k in &keys {
                prop_assert_eq!(index.get(k), Some(k));
            }
            for probe in [3u64, 4_999_999, 2_500_000] {
                let expected = keys.binary_search(&probe).is_ok();
                prop_assert_eq!(index.get(probe).is_some(), expected);
            }
        }

        /// Mixed bulk-load + inserts stay consistent with a BTreeMap oracle.
        #[test]
        fn inserts_match_btreemap(
            mut base in prop::collection::vec(0u64..100_000, 1..200),
            extra in prop::collection::vec((0u64..100_000, 0u64..50), 0..200),
        ) {
            base.sort_unstable();
            base.dedup();
            let mut index = PgmIndex::bulk_load(&identity_records(&base));
            let mut oracle: std::collections::BTreeMap<u64, u64> =
                base.iter().map(|&k| (k, k)).collect();
            for (k, v) in extra {
                index.insert(k, v);
                oracle.insert(k, v);
            }
            prop_assert_eq!(index.len(), oracle.len());
            for (&k, &v) in &oracle {
                prop_assert_eq!(index.get(k), Some(v));
            }
        }
    }
}
