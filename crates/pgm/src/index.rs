//! The PGM index implementation.

use core::ops::ControlFlow;
use csv_common::metrics::CostCounters;
use csv_common::pla::{locate_segment, Segment, SegmentationBuilder};
use csv_common::traits::{
    IndexStats, LearnedIndex, LevelHistogram, RangeIndex, RemovableIndex, SnapshotIndex,
};
use csv_common::{Key, KeyValue, Value};

/// Construction parameters of the PGM index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PgmConfig {
    /// Error bound ε of every level's segmentation.
    pub epsilon: usize,
    /// The delta buffer is merged into the static structure once it exceeds
    /// `len / rebuild_divisor` entries.
    pub rebuild_divisor: usize,
}

impl Default for PgmConfig {
    fn default() -> Self {
        Self {
            epsilon: 64,
            rebuild_divisor: 8,
        }
    }
}

/// A recursive ε-bounded piecewise-linear learned index.
#[derive(Debug, Clone)]
pub struct PgmIndex {
    config: PgmConfig,
    /// Sorted keys of the static part.
    keys: Vec<Key>,
    /// Values aligned with `keys`.
    values: Vec<Value>,
    /// `levels[0]` segments the data keys; `levels[i]` segments the first
    /// keys of `levels[i-1]`. The last level has a single segment.
    levels: Vec<Vec<Segment>>,
    /// First keys of each level's segments (for the level above).
    level_keys: Vec<Vec<Key>>,
    /// Sorted delta buffer of inserts not yet merged.
    buffer: Vec<(Key, Value)>,
    /// Sorted tombstones: keys of the static part that have been removed but
    /// not yet compacted out (applied during the next merge).
    tombstones: Vec<Key>,
}

impl PgmIndex {
    /// Builds the index with a custom configuration.
    pub fn with_config(records: &[KeyValue], config: PgmConfig) -> Self {
        let keys: Vec<Key> = records.iter().map(|r| r.key).collect();
        let values: Vec<Value> = records.iter().map(|r| r.value).collect();
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "records must be sorted and unique"
        );
        let mut index = Self {
            config,
            keys,
            values,
            levels: Vec::new(),
            level_keys: Vec::new(),
            buffer: Vec::new(),
            tombstones: Vec::new(),
        };
        index.rebuild_levels();
        index
    }

    fn rebuild_levels(&mut self) {
        self.levels.clear();
        self.level_keys.clear();
        if self.keys.is_empty() {
            return;
        }
        let builder = SegmentationBuilder::new(self.config.epsilon);
        let mut current: Vec<Segment> = builder.build(&self.keys);
        loop {
            let firsts: Vec<Key> = current.iter().map(|s| s.first_key).collect();
            let single = current.len() == 1;
            self.levels.push(current);
            self.level_keys.push(firsts);
            if single {
                break;
            }
            let firsts = self.level_keys.last().unwrap();
            current = builder.build(firsts);
        }
    }

    /// Number of PLA levels (1 = a single segment covers all keys).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The error bound used for every level.
    pub fn epsilon(&self) -> usize {
        self.config.epsilon
    }

    /// Number of buffered (not yet merged) inserts.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Number of tombstoned (removed but not yet compacted) static keys.
    pub fn tombstoned(&self) -> usize {
        self.tombstones.len()
    }

    /// `true` when `key` has been removed from the static part and not yet
    /// compacted away.
    fn is_tombstoned(&self, key: Key) -> bool {
        self.tombstones.binary_search(&key).is_ok()
    }

    fn search_static(&self, key: Key, counters: Option<&mut CostCounters>) -> Option<Value> {
        if self.keys.is_empty() {
            return None;
        }
        let eps = self.config.epsilon;
        let mut nodes_visited = 0usize;
        let mut comparisons = 0usize;
        // Descend from the top level to the data level. At each level we know
        // a position estimate from the level above; the window to search is
        // ±ε around it.
        let mut pos_hint = 0usize;
        for (depth, level) in self.levels.iter().enumerate().rev() {
            nodes_visited += 1;
            let seg = if depth == self.levels.len() - 1 {
                // Topmost level: single segment (or tiny list) — locate by key.
                locate_segment(level, key)
            } else {
                // Use the hint from the level above: it is an index into this
                // level's segment array; refine by scanning the ±ε window
                // (widened by one on each side to absorb the rounding of the
                // prediction and the rank-vs-segment-index off-by-one).
                let lo = pos_hint.saturating_sub(eps + 2);
                let hi = (pos_hint + eps + 2).min(level.len());
                let window = &level[lo..hi.max(lo + 1).min(level.len())];
                comparisons += (window.len().max(1)).ilog2() as usize + 1;
                locate_segment(window, key)
            };
            let predicted = seg.predict(key);
            if depth == 0 {
                // Data level: binary search the ±ε window of the key array.
                let lo = predicted.saturating_sub(eps + 2).min(self.keys.len());
                let hi = (predicted + eps + 2).min(self.keys.len());
                comparisons += ((hi - lo).max(1)).ilog2() as usize + 1;
                let mut out = csv_common::binary_search_bounded(&self.keys, key, lo, hi);
                if !out.found {
                    // Robustness fallback: if a mid-level window missed the
                    // right segment (possible when a query key falls between
                    // two segments' key ranges), a full binary search keeps
                    // the index correct at O(log n) extra cost.
                    out = csv_common::binary_search_bounded(&self.keys, key, 0, self.keys.len());
                }
                if let Some(c) = counters {
                    c.nodes_visited += nodes_visited;
                    c.comparisons += comparisons + out.comparisons;
                    c.model_evals += self.levels.len();
                }
                return if out.found {
                    Some(self.values[out.position])
                } else {
                    None
                };
            }
            pos_hint = predicted;
        }
        None
    }

    fn maybe_merge(&mut self) {
        let threshold = (self.keys.len() / self.config.rebuild_divisor.max(1)).max(64);
        if self.buffer.len() + self.tombstones.len() < threshold {
            return;
        }
        self.compact();
    }

    /// Merges the insert buffer into the static arrays, drops tombstoned
    /// keys, and rebuilds the PLA levels.
    pub fn compact(&mut self) {
        let mut merged_keys = Vec::with_capacity(self.keys.len() + self.buffer.len());
        let mut merged_values = Vec::with_capacity(self.keys.len() + self.buffer.len());
        let mut i = 0usize;
        let mut j = 0usize;
        while i < self.keys.len() || j < self.buffer.len() {
            let take_static = match (self.keys.get(i), self.buffer.get(j)) {
                (Some(&k), Some(&(bk, _))) => k < bk,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_static {
                if !self.is_tombstoned(self.keys[i]) {
                    merged_keys.push(self.keys[i]);
                    merged_values.push(self.values[i]);
                }
                i += 1;
            } else {
                merged_keys.push(self.buffer[j].0);
                merged_values.push(self.buffer[j].1);
                j += 1;
            }
        }
        self.keys = merged_keys;
        self.values = merged_values;
        self.buffer.clear();
        self.tombstones.clear();
        self.rebuild_levels();
    }
}

impl LearnedIndex for PgmIndex {
    fn name(&self) -> &'static str {
        "PGM"
    }

    fn bulk_load(records: &[KeyValue]) -> Self {
        Self::with_config(records, PgmConfig::default())
    }

    fn get(&self, key: Key) -> Option<Value> {
        if let Ok(i) = self.buffer.binary_search_by_key(&key, |&(k, _)| k) {
            return Some(self.buffer[i].1);
        }
        if self.is_tombstoned(key) {
            return None;
        }
        self.search_static(key, None)
    }

    fn get_counted(&self, key: Key, counters: &mut CostCounters) -> Option<Value> {
        if let Ok(i) = self.buffer.binary_search_by_key(&key, |&(k, _)| k) {
            counters.comparisons += (self.buffer.len().max(1)).ilog2() as usize + 1;
            return Some(self.buffer[i].1);
        }
        if !self.buffer.is_empty() {
            counters.comparisons += (self.buffer.len().max(1)).ilog2() as usize + 1;
        }
        if self.is_tombstoned(key) {
            counters.comparisons += (self.tombstones.len().max(1)).ilog2() as usize + 1;
            return None;
        }
        self.search_static(key, Some(counters))
    }

    fn insert(&mut self, key: Key, value: Value) -> bool {
        // A key that was tombstoned is logically absent: re-inserting it
        // revives the static slot and counts as a new key.
        if let Ok(t) = self.tombstones.binary_search(&key) {
            self.tombstones.remove(t);
            if let Ok(slot) = self.keys.binary_search(&key) {
                self.values[slot] = value;
            }
            return true;
        }
        // Overwrite in the static part if present.
        if let Ok(slot) = self.keys.binary_search(&key) {
            self.values[slot] = value;
            return false;
        }
        let new = match self.buffer.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => {
                self.buffer[i].1 = value;
                false
            }
            Err(i) => {
                self.buffer.insert(i, (key, value));
                true
            }
        };
        if new {
            self.maybe_merge();
        }
        new
    }

    fn len(&self) -> usize {
        self.keys.len() + self.buffer.len() - self.tombstones.len()
    }

    fn stats(&self) -> IndexStats {
        let height = self.num_levels().max(1);
        let mut histogram = LevelHistogram::new();
        if !self.keys.is_empty() || !self.buffer.is_empty() {
            // All data keys are reached after descending `height` levels.
            histogram.record(height, self.len());
        }
        let seg_count: usize = self.levels.iter().map(|l| l.len()).sum();
        let size_bytes = self.keys.len() * 16
            + self.buffer.len() * 16
            + seg_count * std::mem::size_of::<Segment>();
        IndexStats {
            level_histogram: histogram,
            node_count: seg_count.max(1),
            deep_node_count: if height >= 3 {
                self.levels.first().map_or(0, |l| l.len())
            } else {
                0
            },
            height,
            size_bytes,
            num_keys: self.len(),
        }
    }

    fn level_of_key(&self, key: Key) -> Option<usize> {
        if self.get(key).is_some() {
            Some(self.num_levels().max(1))
        } else {
            None
        }
    }

    fn prefetch_key(&self, key: Key) {
        // The recursive levels are small and hot; the cold miss is the data
        // key array. Predict with the data-level segmentation directly and
        // prefetch the centre of the ±ε window the lookup will search.
        if let Some(level0) = self.levels.first() {
            let predicted = locate_segment(level0, key).predict(key);
            csv_common::prefetch_slice_at(&self.keys, predicted.min(self.keys.len()));
        }
    }
}

impl RangeIndex for PgmIndex {
    fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        let mut out = Vec::new();
        let _ = self.range_visit(lo, hi, &mut |k, v| {
            out.push(KeyValue::new(k, v));
            ControlFlow::Continue(())
        });
        out
    }

    fn range_visit(
        &self,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if lo > hi {
            return ControlFlow::Continue(());
        }
        // Merge the sorted static part (minus tombstones) with the sorted
        // insert buffer, restricted to [lo, hi], streaming each record to
        // `f` as the two cursors advance.
        let mut i = self.keys.partition_point(|&k| k < lo);
        let mut j = self.buffer.partition_point(|&(k, _)| k < lo);
        while i < self.keys.len() || j < self.buffer.len() {
            let static_key = self.keys.get(i).copied().filter(|&k| k <= hi);
            let buffer_key = self.buffer.get(j).map(|&(k, _)| k).filter(|&k| k <= hi);
            match (static_key, buffer_key) {
                (None, None) => break,
                (Some(k), bk) if bk.is_none_or(|b| k < b) => {
                    if !self.is_tombstoned(k) {
                        f(k, self.values[i])?;
                    }
                    i += 1;
                }
                (_, Some(_)) => {
                    f(self.buffer[j].0, self.buffer[j].1)?;
                    j += 1;
                }
                _ => break,
            }
        }
        ControlFlow::Continue(())
    }
}

/// Snapshot audit: `derive(Clone)` deep-copies the static key/value
/// arrays, the recursive segment levels, the delta buffer and the
/// tombstone list — all plain `Vec`s, so the clone is an independent
/// O(keys) copy.
impl SnapshotIndex for PgmIndex {}

impl RemovableIndex for PgmIndex {
    fn remove(&mut self, key: Key) -> Option<Value> {
        // Buffered inserts are removed in place; static keys are tombstoned
        // and compacted out during the next merge.
        if let Ok(i) = self.buffer.binary_search_by_key(&key, |&(k, _)| k) {
            let (_, value) = self.buffer.remove(i);
            return Some(value);
        }
        if self.is_tombstoned(key) {
            return None;
        }
        if let Ok(slot) = self.keys.binary_search(&key) {
            let value = self.values[slot];
            let at = self.tombstones.partition_point(|&t| t < key);
            self.tombstones.insert(at, key);
            self.maybe_merge();
            return Some(value);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_common::key::identity_records;

    fn clustered_keys(n: u64) -> Vec<Key> {
        // Alternating dense and sparse regions to force several segments.
        let mut keys = Vec::new();
        let mut base = 0u64;
        for block in 0..n / 100 {
            let stride = if block % 2 == 0 { 1 } else { 1000 };
            for i in 0..100u64 {
                keys.push(base + i * stride);
            }
            base += 100 * stride + 10_000;
        }
        keys
    }

    #[test]
    fn bulk_load_and_lookup() {
        let keys = clustered_keys(20_000);
        let index = PgmIndex::bulk_load(&identity_records(&keys));
        assert_eq!(index.len(), keys.len());
        assert!(
            index.num_levels() >= 2,
            "clustered keys should need multiple levels"
        );
        for &k in keys.iter().step_by(37) {
            assert_eq!(index.get(k), Some(k));
        }
        assert_eq!(index.get(keys[keys.len() - 1] + 1), None);
        assert_eq!(index.name(), "PGM");
    }

    #[test]
    fn epsilon_trades_levels_for_search_window() {
        let keys = clustered_keys(30_000);
        let tight = PgmIndex::with_config(
            &identity_records(&keys),
            PgmConfig {
                epsilon: 8,
                rebuild_divisor: 8,
            },
        );
        let loose = PgmIndex::with_config(
            &identity_records(&keys),
            PgmConfig {
                epsilon: 256,
                rebuild_divisor: 8,
            },
        );
        let tight_segments = tight.stats().node_count;
        let loose_segments = loose.stats().node_count;
        assert!(tight_segments >= loose_segments);
        assert_eq!(tight.epsilon(), 8);
        for &k in keys.iter().step_by(501) {
            assert_eq!(tight.get(k), Some(k));
            assert_eq!(loose.get(k), Some(k));
        }
    }

    #[test]
    fn inserts_buffer_then_merge() {
        let keys: Vec<Key> = (0..10_000u64).map(|i| i * 4).collect();
        let mut index = PgmIndex::bulk_load(&identity_records(&keys));
        let before_levels = index.num_levels();
        for i in 0..2_000u64 {
            assert!(index.insert(i * 4 + 1, i));
        }
        assert_eq!(index.len(), 12_000);
        // The buffer must have been merged at least once.
        assert!(index.buffered() < 2_000);
        for i in 0..2_000u64 {
            assert_eq!(index.get(i * 4 + 1), Some(i));
        }
        // Overwrites do not change the length.
        assert!(!index.insert(0, 99));
        assert_eq!(index.get(0), Some(99));
        assert_eq!(index.len(), 12_000);
        assert!(index.num_levels() >= 1);
        let _ = before_levels;
    }

    #[test]
    fn empty_index() {
        let index = PgmIndex::bulk_load(&[]);
        assert!(index.is_empty());
        assert_eq!(index.get(1), None);
        assert_eq!(index.num_levels(), 0);
        assert_eq!(index.level_of_key(1), None);
    }

    #[test]
    fn counted_lookup_charges_costs() {
        let keys = clustered_keys(20_000);
        let index = PgmIndex::bulk_load(&identity_records(&keys));
        let mut counters = CostCounters::new();
        assert_eq!(index.get_counted(keys[777], &mut counters), Some(keys[777]));
        assert!(counters.nodes_visited >= 1);
        assert!(counters.comparisons >= 1);
        assert!(counters.model_evals >= 1);
    }

    #[test]
    fn range_scans_cover_static_and_buffered_records() {
        let keys: Vec<Key> = (0..10_000u64).map(|i| i * 10).collect();
        let mut index = PgmIndex::bulk_load(&identity_records(&keys));
        // Buffer a handful of fresh keys without triggering a merge.
        for i in 0..50u64 {
            index.insert(i * 10 + 5, i);
        }
        let lo = 200;
        let hi = 705;
        let got = index.range(lo, hi);
        let mut expected: Vec<Key> = keys
            .iter()
            .copied()
            .filter(|&k| k >= lo && k <= hi)
            .collect();
        expected.extend(
            (0..50u64)
                .map(|i| i * 10 + 5)
                .filter(|&k| k >= lo && k <= hi),
        );
        expected.sort_unstable();
        assert_eq!(got.iter().map(|r| r.key).collect::<Vec<_>>(), expected);
        assert!(got.windows(2).all(|w| w[0].key < w[1].key));
        assert!(index.range(3, 4).is_empty());
        assert!(index.range(hi, lo).is_empty());
        assert_eq!(index.range(0, u64::MAX).len(), index.len());
    }

    #[test]
    fn removals_tombstone_then_compact() {
        let keys: Vec<Key> = (0..5_000u64).map(|i| i * 3).collect();
        let mut index = PgmIndex::bulk_load(&identity_records(&keys));
        let before = index.len();
        // Remove a static key: it is tombstoned, invisible, and excluded from
        // ranges and the length.
        assert_eq!(index.remove(300), Some(300));
        assert_eq!(index.get(300), None);
        assert_eq!(index.remove(300), None);
        assert_eq!(index.len(), before - 1);
        assert!(index.range(297, 303).iter().all(|r| r.key != 300));
        // Remove a buffered key.
        index.insert(301, 42);
        assert_eq!(index.remove(301), Some(42));
        assert_eq!(index.get(301), None);
        // Re-inserting a tombstoned key revives it.
        assert!(index.insert(300, 77));
        assert_eq!(index.get(300), Some(77));
        assert_eq!(index.len(), before);
        // Force a compaction and verify tombstoned keys are dropped for good.
        assert_eq!(index.remove(600), Some(600));
        index.compact();
        assert_eq!(index.tombstoned(), 0);
        assert_eq!(index.get(600), None);
        assert_eq!(index.len(), before - 1);
        for &k in keys.iter().step_by(97) {
            if k != 600 {
                assert_eq!(index.get(k), Some(if k == 300 { 77 } else { k }));
            }
        }
    }

    #[test]
    fn many_removals_trigger_automatic_compaction() {
        let keys: Vec<Key> = (0..20_000u64).map(|i| i * 2).collect();
        let mut index = PgmIndex::bulk_load(&identity_records(&keys));
        for &k in keys.iter().take(10_000) {
            assert_eq!(index.remove(k), Some(k));
        }
        assert_eq!(index.len(), 10_000);
        // The tombstone list must have been compacted along the way rather
        // than growing without bound.
        assert!(index.tombstoned() < 10_000);
        for &k in keys.iter().skip(10_000).step_by(53) {
            assert_eq!(index.get(k), Some(k));
        }
    }
}
