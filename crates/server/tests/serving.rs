//! End-to-end serving tests over real loopback sockets (port 0 → the OS
//! picks; nothing here depends on a fixed port being free).
//!
//! The acceptance pins live here: `MultiGet` over the wire must equal N
//! individual `Get`s, the locked-vs-RCU A/B must work through the server,
//! a hostile byte stream must cost only its own connection, and the load
//! generator must complete a YCSB run against a live server.

use csv_btree::BPlusTree;
use csv_common::key::identity_records;
use csv_concurrent::{
    MaintenanceConfig, MaintenanceEngine, ReadPath, ShardedIndex, ShardingConfig,
};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::Dataset;
use csv_lipp::LippIndex;
use csv_server::{
    run_loadgen, spawn, Client, LoadgenConfig, MixChoice, Request, ServerConfig, WriteOp,
};
use std::sync::Arc;
use std::time::Duration;

fn serve_btree(
    keys: &[u64],
    read_path: ReadPath,
    workers: usize,
) -> (csv_server::ServerHandle, Arc<ShardedIndex<BPlusTree>>) {
    let index = Arc::new(ShardedIndex::<BPlusTree>::bulk_load(
        &identity_records(keys),
        ShardingConfig::with_shards(4).with_read_path(read_path),
    ));
    let handle = spawn(
        Arc::clone(&index),
        None,
        ServerConfig {
            port: 0,
            workers,
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral loopback port");
    (handle, index)
}

#[test]
fn point_ops_round_trip_over_the_wire_on_both_read_paths() {
    let keys = Dataset::Genome.generate(20_000, 5);
    for read_path in [ReadPath::Rcu, ReadPath::Locked] {
        let (handle, _index) = serve_btree(&keys, read_path, 2);
        let mut client = Client::connect(handle.local_addr()).unwrap();

        // Hits and misses.
        assert_eq!(client.get(keys[17]).unwrap(), Some(keys[17]));
        let absent = keys.last().unwrap() + 1;
        assert_eq!(client.get(absent).unwrap(), None);

        // Writes are visible to subsequent reads on the same connection.
        assert!(client.insert(absent, 999).unwrap());
        assert_eq!(client.get(absent).unwrap(), Some(999));
        assert!(
            !client.insert(absent, 1000).unwrap(),
            "overwrite is not fresh"
        );
        assert_eq!(client.remove(absent).unwrap(), Some(1000));
        assert_eq!(client.get(absent).unwrap(), None);

        // Range scans with and without a limit.
        let lo = keys[100];
        let hi = keys[160];
        let scan = client.range(lo, hi, 0).unwrap();
        assert_eq!(scan.records.len(), 61);
        assert!(!scan.truncated, "a 61-record scan is nowhere near the cap");
        assert!(scan.records.windows(2).all(|w| w[0].key < w[1].key));
        let limited = client.range(lo, hi, 10).unwrap();
        assert_eq!(limited.records.len(), 10);
        assert!(!limited.truncated, "a satisfied limit is not truncation");

        // Write batches report fresh inserts and remove hits.
        let (fresh, hits) = client
            .write_batch(&[
                WriteOp::Insert {
                    key: absent,
                    value: 1,
                },
                WriteOp::Insert {
                    key: absent,
                    value: 2,
                },
                WriteOp::Remove { key: absent },
                WriteOp::Remove { key: absent },
            ])
            .unwrap();
        assert_eq!((fresh, hits), (1, 1));

        // Stats reflect the configuration.
        let stats = client.stats().unwrap();
        assert_eq!(stats.keys, keys.len() as u64);
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.rcu, read_path == ReadPath::Rcu);
        assert!(stats.engine_healthy, "no engine, nothing to be unhealthy");
        assert!(!stats.maintenance);
        assert!(stats.connections >= 1);
        assert!(stats.ops >= 10);

        client.shutdown().unwrap();
        let report = handle.join();
        assert!(report.ops >= 10);
        assert!(report.engine_healthy);
        assert_eq!(report.protocol_errors, 0);
    }
}

/// The acceptance pin: a `MultiGet` frame returns exactly what N
/// individual `Get` frames return, in order, hits and misses mixed.
#[test]
fn multi_get_over_the_wire_equals_n_individual_gets() {
    let keys = Dataset::Osm.generate(30_000, 7);
    let (handle, index) = serve_btree(&keys, ReadPath::Rcu, 2);
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Dirty the overlays so the batch crosses base + overlay + tombstones.
    for &k in keys.iter().step_by(31) {
        client.insert(k, k ^ 0xF00D).unwrap();
    }
    for &k in keys.iter().step_by(57) {
        client.remove(k).unwrap();
    }

    let mut batch: Vec<u64> = keys.iter().copied().step_by(13).take(400).collect();
    batch.push(keys.last().unwrap() + 100); // miss above the key space
    batch.push(0); // miss below (genome keys are large)
    batch.reverse();

    let batched = client.multi_get(&batch).unwrap();
    let individual: Vec<Option<u64>> = batch.iter().map(|&k| client.get(k).unwrap()).collect();
    assert_eq!(batched, individual);

    // And both agree with the index the server is actually serving.
    let local: Vec<Option<u64>> = batch.iter().map(|&k| index.get(k)).collect();
    assert_eq!(batched, local);

    // Empty batches are legal.
    assert!(client.multi_get(&[]).unwrap().is_empty());

    client.shutdown().unwrap();
    handle.join();
}

/// The streaming-scan acceptance pins, over the wire: a `Range` frame
/// returns exactly what the index's materialised `range` returns (both
/// read paths, overlays dirtied), and a scan wider than one frame's
/// record capacity comes back truncated — a typed flag on a complete
/// prefix, never a protocol error — and can be continued from the last
/// key to cover the whole range.
#[test]
fn range_over_the_wire_streams_truncates_and_continues() {
    // Dense sequential keys so a full-range scan comfortably exceeds the
    // ~65k records one 1 MiB frame can carry.
    let keys: Vec<u64> = (0..80_000u64).map(|i| i * 2).collect();
    for read_path in [ReadPath::Rcu, ReadPath::Locked] {
        let (handle, index) = serve_btree(&keys, read_path, 2);
        let mut client = Client::connect(handle.local_addr()).unwrap();

        // Dirty the overlays so the scan merges base + upserts + tombstones.
        for &k in keys.iter().step_by(97) {
            client.insert(k, k ^ 0xBEEF).unwrap();
        }
        for &k in keys.iter().step_by(41) {
            client.remove(k).unwrap();
        }

        // Interior scan: wire result ≡ the served index's materialised range.
        let (lo, hi) = (keys[1_000], keys[2_000]);
        let scan = client.range(lo, hi, 0).unwrap();
        assert!(!scan.truncated);
        assert_eq!(scan.records, index.range(lo, hi));

        // Full-range scan: more records exist than fit one frame, so the
        // server truncates at the cap and says so.
        let expected = index.range(0, u64::MAX);
        assert!(expected.len() > csv_server::MAX_RECORDS_PER_FRAME);
        let first = client.range(0, u64::MAX, 0).unwrap();
        assert!(first.truncated, "an over-cap scan must report truncation");
        assert_eq!(first.records.len(), csv_server::MAX_RECORDS_PER_FRAME);
        assert_eq!(first.records[..], expected[..first.records.len()]);

        // The truncated prefix is resumable: continue from the last key + 1
        // until the server stops truncating, then compare the whole set.
        let mut all = first.records.clone();
        let mut truncated = first.truncated;
        while truncated {
            let next = client
                .range(all.last().unwrap().key + 1, u64::MAX, 0)
                .unwrap();
            all.extend_from_slice(&next.records);
            truncated = next.truncated;
        }
        assert_eq!(all, expected);

        client.shutdown().unwrap();
        handle.join();
    }
}

/// A hostile byte stream closes only its own connection: the worker
/// answers with a typed error frame, drops the connection, and keeps
/// serving everyone else.
#[test]
fn hostile_bytes_close_only_their_own_connection() {
    let keys = Dataset::Genome.generate(5_000, 3);
    let (handle, _index) = serve_btree(&keys, ReadPath::Rcu, 1); // one worker owns both conns
    let addr = handle.local_addr();
    let mut good = Client::connect(addr).unwrap();
    assert_eq!(good.get(keys[0]).unwrap(), Some(keys[0]));

    for hostile_bytes in [
        b"GET / HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(), // not our protocol at all
        {
            // Valid header, payload with a broken CRC.
            let mut buf = Vec::new();
            csv_server::encode_request(&Request::Get { key: 1 }, &mut buf);
            *buf.last_mut().unwrap() ^= 0xFF;
            buf
        },
        (2u32 << 20)
            .to_le_bytes()
            .iter()
            .chain([0u8; 4].iter())
            .copied()
            .collect(), // oversized
    ] {
        let mut evil = Client::connect(addr).unwrap();
        evil.send_raw(&hostile_bytes).unwrap();
        // The server answers with an error frame (best-effort) and closes.
        let goodbye = evil.read_until_closed();
        assert!(
            !goodbye.is_empty(),
            "the worker should explain before hanging up"
        );
        // The well-behaved connection on the same worker is unaffected.
        assert_eq!(good.get(keys[1]).unwrap(), Some(keys[1]));
    }

    good.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.protocol_errors, 3);
    assert!(report.engine_healthy);
}

/// The maintenance engine runs behind the socket: `Stats` surfaces its
/// health while it ticks, and shutdown joins it and returns its stats.
#[test]
fn maintenance_engine_rides_behind_the_socket() {
    let keys = Dataset::Genome.generate(30_000, 11);
    let index = Arc::new(ShardedIndex::<LippIndex>::bulk_load(
        &identity_records(&keys),
        ShardingConfig::with_shards(4).with_read_path(ReadPath::Rcu),
    ));
    let engine = MaintenanceEngine::new(
        CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
        MaintenanceConfig::default(),
    );
    let engine_handle = engine.spawn(Arc::clone(&index));
    let handle = spawn(
        index,
        Some(engine_handle),
        ServerConfig {
            port: 0,
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut client = Client::connect(handle.local_addr()).unwrap();
    // Churn a little so the engine has something to look at.
    for &k in keys.iter().step_by(9).take(2_000) {
        client.insert(k, k + 1).unwrap();
    }
    let stats = client.stats().unwrap();
    assert!(stats.maintenance, "the engine is attached");
    assert!(stats.engine_healthy, "and has not panicked");

    client.shutdown().unwrap();
    let report = handle.join();
    assert!(report.engine_healthy);
    assert!(
        report.engine_stats.is_some(),
        "a clean shutdown returns the engine's stats"
    );
}

/// The load generator completes a short YCSB-B run against a live server,
/// reports nonzero completed operations and a populated histogram, and
/// shuts the server down cleanly.
#[test]
fn loadgen_completes_a_ycsb_b_run_and_shuts_the_server_down() {
    let size = 20_000;
    let seed = 21;
    let keys = Dataset::Genome.generate(size, seed);
    let (handle, _index) = serve_btree(&keys, ReadPath::Rcu, 2);

    let report = run_loadgen(&LoadgenConfig {
        addr: handle.local_addr().to_string(),
        connections: 3,
        duration: Duration::from_millis(400),
        mix: MixChoice::YcsbB,
        dataset: Dataset::Genome,
        size,
        seed,
        batch: 16,
        write_batch: 8,
        range: 0,
        ops_per_conn: 5_000,
        shutdown: true,
    })
    .expect("the run must complete");

    assert!(report.completed > 0, "a live server must serve operations");
    assert_eq!(report.connections, 3);
    assert!(report.latency.count() > 0);
    assert!(report.throughput() > 0.0);
    let rendered = report.render();
    assert!(rendered.contains("ops/s"));
    assert!(rendered.contains("p99.9="));

    // --shutdown stopped the server; join returns promptly with counters.
    let server_report = handle.join();
    assert!(server_report.ops > 0);
    assert!(server_report.connections >= 4, "3 loadgen + 1 shutdown");
    assert!(server_report.engine_healthy);
}

/// `ServerHandle::shutdown` stops a server from the handle side even with
/// clients connected and idle.
#[test]
fn handle_side_shutdown_stops_an_idle_server() {
    let keys = Dataset::Genome.generate(2_000, 1);
    let (handle, _index) = serve_btree(&keys, ReadPath::Locked, 2);
    let mut client = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(client.get(keys[5]).unwrap(), Some(keys[5]));
    assert!(!handle.is_stopping());
    let report = handle.shutdown();
    assert!(report.connections >= 1);
    assert!(report.engine_healthy);
}
