//! Protocol robustness: property-based round-trips for every frame type,
//! and typed rejection of every malformed-input class (truncated frames,
//! flipped bits, oversized lengths, unknown opcodes). The decoder must
//! never panic on arbitrary bytes — a hostile stream costs its sender the
//! connection, nothing more.

use csv_common::key::KeyValue;
use csv_server::{
    decode_request, decode_response, encode_request, encode_response, Decoded, ProtocolError,
    Request, Response, ServerStats, WriteOp, MAX_FRAME_LEN,
};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// A strategy over every request variant, with whole-domain keys/values.
fn request() -> impl Strategy<Value = Request> {
    (
        0u64..8,
        (any::<u64>(), any::<u64>(), any::<u32>()),
        pvec(any::<u64>(), 0..48),
        pvec((any::<bool>(), any::<u64>(), any::<u64>()), 0..24),
    )
        .prop_map(|(kind, (a, b, limit), keys, raw_ops)| match kind {
            0 => Request::Get { key: a },
            1 => Request::MultiGet { keys },
            2 => Request::Range {
                lo: a.min(b),
                hi: a.max(b),
                limit,
            },
            3 => Request::Insert { key: a, value: b },
            4 => Request::Remove { key: a },
            5 => Request::WriteBatch {
                ops: raw_ops
                    .into_iter()
                    .map(|(is_remove, key, value)| {
                        if is_remove {
                            WriteOp::Remove { key }
                        } else {
                            WriteOp::Insert { key, value }
                        }
                    })
                    .collect(),
            },
            6 => Request::Stats,
            _ => Request::Shutdown,
        })
}

/// A strategy over every response variant.
fn response() -> impl Strategy<Value = Response> {
    (
        0u64..9,
        (any::<u64>(), any::<u64>(), any::<bool>()),
        pvec((any::<bool>(), any::<u64>()), 0..48),
        pvec(any::<u8>(), 0..64),
    )
        .prop_map(|(kind, (a, b, flag), pairs, text)| match kind {
            0 => Response::Value(flag.then_some(a)),
            1 => Response::Values(pairs.iter().map(|&(some, v)| some.then_some(v)).collect()),
            2 => Response::Records {
                records: pairs
                    .iter()
                    .map(|&(_, v)| KeyValue {
                        key: v,
                        value: v ^ a,
                    })
                    .collect(),
                truncated: flag,
            },
            3 => Response::Inserted(flag),
            4 => Response::Removed(flag.then_some(b)),
            5 => Response::BatchApplied {
                fresh_inserts: a as u32,
                hits: b as u32,
            },
            6 => Response::Stats(ServerStats {
                keys: a,
                shards: (b as u32) | 1,
                workers: (a as u32) % 64,
                rcu: flag,
                connections: b,
                ops: a ^ b,
                engine_healthy: !flag,
                maintenance: flag,
            }),
            7 => Response::ShuttingDown,
            _ => Response::Error(String::from_utf8_lossy(&text).into_owned()),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → decode is the identity for every request frame, consumes
    /// exactly the encoded bytes, and every strict prefix is Incomplete.
    #[test]
    fn request_frames_round_trip(req in request(), cut in any::<usize>()) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        match decode_request(&buf) {
            Ok(Decoded::Frame { value, consumed }) => {
                prop_assert_eq!(value, req);
                prop_assert_eq!(consumed, buf.len());
            }
            other => prop_assert!(false, "expected a frame, got {:?}", other),
        }
        let cut = cut % buf.len();
        prop_assert_eq!(decode_request(&buf[..cut]), Ok(Decoded::Incomplete));
    }

    /// Same for every response frame.
    #[test]
    fn response_frames_round_trip(resp in response(), cut in any::<usize>()) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        match decode_response(&buf) {
            Ok(Decoded::Frame { value, consumed }) => {
                prop_assert_eq!(value, resp);
                prop_assert_eq!(consumed, buf.len());
            }
            other => prop_assert!(false, "expected a frame, got {:?}", other),
        }
        let cut = cut % buf.len();
        prop_assert_eq!(decode_response(&buf[..cut]), Ok(Decoded::Incomplete));
    }

    /// Pure fuzz: arbitrary bytes never panic either decoder — they decode,
    /// wait for more input, or fail with a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in pvec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Flipping any single bit of a valid frame is caught: the CRC rejects
    /// payload damage, and header damage either changes the length (longer
    /// → Incomplete/Oversized, shorter/other → CRC or structure error) but
    /// never yields the original value with a wrong payload.
    #[test]
    fn single_bit_flips_never_yield_a_wrong_payload(
        req in request(),
        flip in any::<usize>(),
    ) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let bit = flip % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        match decode_request(&buf) {
            // A length-field flip can make the frame look unfinished, and
            // flipping one bit inside e.g. a key while *also* hitting the
            // CRC is impossible — so any successfully decoded frame must
            // be byte-identical to what was sent, which a single flipped
            // bit rules out entirely.
            Ok(Decoded::Frame { value, .. }) => {
                prop_assert_eq!(value, req, "a corrupted frame decoded to a different value");
                // Reaching here would mean the flip was absorbed; with
                // len+crc+payload all covered, that cannot happen.
                prop_assert!(false, "a flipped bit went undetected");
            }
            Ok(Decoded::Incomplete) | Err(_) => {}
        }
    }
}

#[test]
fn truncated_bad_crc_oversized_and_unknown_opcode_are_distinct_typed_errors() {
    let mut valid = Vec::new();
    encode_request(&Request::Get { key: 7 }, &mut valid);

    // Truncated *within* a declared frame: shrink the length field so the
    // payload ends before the Get's key — the reader reports Truncated.
    let mut short = valid.clone();
    short[0] = 5; // opcode + 4 of the key's 8 bytes
    short.truncate(8 + 5);
    let crc = csv_durability::crc::crc32(&short[8..]);
    short[4..8].copy_from_slice(&crc.to_le_bytes());
    assert_eq!(decode_request(&short), Err(ProtocolError::Truncated));

    // Bad CRC: flip a payload bit, leave the header alone.
    let mut corrupt = valid.clone();
    *corrupt.last_mut().unwrap() ^= 0x40;
    assert!(matches!(
        decode_request(&corrupt),
        Err(ProtocolError::BadCrc { .. })
    ));

    // Oversized: a hostile 512 MiB length prefix is rejected from the
    // 8 header bytes alone, before any payload arrives or is buffered.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&(512u32 << 20).to_le_bytes());
    oversized.extend_from_slice(&[0, 0, 0, 0]);
    assert_eq!(
        decode_request(&oversized),
        Err(ProtocolError::Oversized {
            len: 512 << 20,
            max: MAX_FRAME_LEN,
        })
    );

    // Unknown opcode with a valid header.
    let payload = [0xEEu8];
    let mut unknown = Vec::new();
    unknown.extend_from_slice(&1u32.to_le_bytes());
    unknown.extend_from_slice(&csv_durability::crc::crc32(&payload).to_le_bytes());
    unknown.extend_from_slice(&payload);
    assert_eq!(
        decode_request(&unknown),
        Err(ProtocolError::UnknownOpcode(0xEE))
    );

    // Every error renders a distinct human-readable message.
    let messages: Vec<String> = [
        ProtocolError::Truncated,
        ProtocolError::BadCrc {
            expected: 1,
            found: 2,
        },
        ProtocolError::Oversized {
            len: 512 << 20,
            max: MAX_FRAME_LEN,
        },
        ProtocolError::UnknownOpcode(0xEE),
        ProtocolError::Malformed("tag"),
    ]
    .iter()
    .map(|e| e.to_string())
    .collect();
    for (i, a) in messages.iter().enumerate() {
        assert!(!a.is_empty());
        for b in &messages[i + 1..] {
            assert_ne!(a, b);
        }
    }
}
