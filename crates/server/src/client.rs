//! A small blocking client for the serving protocol.
//!
//! One request in flight at a time: encode, send, block until the response
//! frame decodes. This is all the load generator and the tests need, and
//! it doubles as the reference implementation of the client side of the
//! protocol.

use crate::codec::{decode_response, encode_request, Decoded};
use crate::errors::ClientError;
use crate::protocol::{Request, Response, ServerStats, WriteOp};
use csv_common::key::{Key, KeyValue, Value};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Result of a range scan: the records (ascending by key) plus whether
/// the server cut the scan at the 1 MiB frame cap before the range (or
/// the requested limit) was exhausted. Truncation is typed, not an error:
/// the records are a complete prefix and the caller can continue from
/// `records.last().key + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeScan {
    /// The returned records, ascending by key.
    pub records: Vec<KeyValue>,
    /// `true` when the server stopped at the frame cap.
    pub truncated: bool,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    /// Bytes received but not yet decoded.
    inbox: Vec<u8>,
    /// Reused encode buffer.
    outbox: Vec<u8>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            inbox: Vec::new(),
            outbox: Vec::new(),
        })
    }

    /// Sends one request and blocks until its response arrives.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.outbox.clear();
        encode_request(req, &mut self.outbox);
        self.stream.write_all(&self.outbox)?;
        let mut scratch = [0u8; 64 * 1024];
        loop {
            match decode_response(&self.inbox)? {
                Decoded::Frame { value, consumed } => {
                    self.inbox.drain(..consumed);
                    return match value {
                        Response::Error(msg) => Err(ClientError::Server(msg)),
                        other => Ok(other),
                    };
                }
                Decoded::Incomplete => {
                    let n = self.stream.read(&mut scratch)?;
                    if n == 0 {
                        return Err(ClientError::Disconnected);
                    }
                    self.inbox.extend_from_slice(&scratch[..n]);
                }
            }
        }
    }

    /// Point lookup.
    pub fn get(&mut self, key: Key) -> Result<Option<Value>, ClientError> {
        match self.request(&Request::Get { key })? {
            Response::Value(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Value")),
        }
    }

    /// Batched point lookup; results come back in request order.
    pub fn multi_get(&mut self, keys: &[Key]) -> Result<Vec<Option<Value>>, ClientError> {
        match self.request(&Request::MultiGet {
            keys: keys.to_vec(),
        })? {
            Response::Values(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Values")),
        }
    }

    /// Range scan over `[lo, hi]`; `limit == 0` means unlimited. The
    /// server streams records into one response frame and reports (typed,
    /// in [`RangeScan::truncated`]) when it had to stop at the frame cap.
    pub fn range(&mut self, lo: Key, hi: Key, limit: u32) -> Result<RangeScan, ClientError> {
        match self.request(&Request::Range { lo, hi, limit })? {
            Response::Records { records, truncated } => Ok(RangeScan { records, truncated }),
            _ => Err(ClientError::Unexpected("Records")),
        }
    }

    /// Insert or overwrite; `Ok(true)` when the key was new.
    pub fn insert(&mut self, key: Key, value: Value) -> Result<bool, ClientError> {
        match self.request(&Request::Insert { key, value })? {
            Response::Inserted(fresh) => Ok(fresh),
            _ => Err(ClientError::Unexpected("Inserted")),
        }
    }

    /// Remove; returns the removed value when the key existed.
    pub fn remove(&mut self, key: Key) -> Result<Option<Value>, ClientError> {
        match self.request(&Request::Remove { key })? {
            Response::Removed(v) => Ok(v),
            _ => Err(ClientError::Unexpected("Removed")),
        }
    }

    /// Applies writes in order; returns `(fresh_inserts, remove_hits)`.
    pub fn write_batch(&mut self, ops: &[WriteOp]) -> Result<(u32, u32), ClientError> {
        match self.request(&Request::WriteBatch { ops: ops.to_vec() })? {
            Response::BatchApplied {
                fresh_inserts,
                hits,
            } => Ok((fresh_inserts, hits)),
            _ => Err(ClientError::Unexpected("BatchApplied")),
        }
    }

    /// Fetches a server statistics snapshot.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::Unexpected("Stats")),
        }
    }

    /// Asks the whole server to stop; returns once it acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Unexpected("ShuttingDown")),
        }
    }

    /// Sends raw bytes down the connection — the hostile-input tests use
    /// this to prove a garbage stream only costs the sender its own
    /// connection.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Reads until the server closes this connection, returning whatever
    /// bytes arrived first (e.g. the typed error response).
    pub fn read_until_closed(&mut self) -> Vec<u8> {
        let mut scratch = [0u8; 4096];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(n) => self.inbox.extend_from_slice(&scratch[..n]),
            }
        }
        std::mem::take(&mut self.inbox)
    }
}
