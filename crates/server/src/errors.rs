//! Typed error values for the wire protocol, the server and the client.
//!
//! The protocol errors exist so a hostile byte stream can never panic a
//! worker: every way a frame can be malformed maps to a variant here, the
//! worker logs it and closes that one connection, and every other
//! connection keeps being served.

use std::fmt;
use std::io;

/// Everything that can be wrong with bytes arriving on a connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame header declares a payload longer than
    /// [`MAX_FRAME_LEN`](crate::protocol::MAX_FRAME_LEN); honouring it would
    /// let one connection allocate unbounded memory.
    Oversized {
        /// The declared payload length.
        len: usize,
        /// The limit it exceeded.
        max: usize,
    },
    /// The payload checksum does not match the frame header.
    BadCrc {
        /// The checksum the header carried.
        expected: u32,
        /// The checksum of the bytes that actually arrived.
        found: u32,
    },
    /// The first payload byte names no known request or response.
    UnknownOpcode(u8),
    /// The payload body ended before the fields its opcode requires.
    Truncated,
    /// The payload is structurally invalid in some other way (an impossible
    /// tag, a length field pointing past the payload, non-UTF-8 text).
    Malformed(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Oversized { len, max } => {
                write!(f, "frame declares {len} payload bytes (limit {max})")
            }
            Self::BadCrc { expected, found } => {
                write!(
                    f,
                    "frame crc mismatch (header {expected:#010x}, payload {found:#010x})"
                )
            }
            Self::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            Self::Truncated => f.write_str("payload ends before its opcode's fields"),
            Self::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// What can go wrong talking to the server from the [`Client`].
///
/// [`Client`]: crate::client::Client
#[derive(Debug)]
pub enum ClientError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The server sent bytes that do not decode as a response frame.
    Protocol(ProtocolError),
    /// The server closed the connection before answering (e.g. after we
    /// sent it a frame it considered hostile).
    Disconnected,
    /// The server answered with its error response.
    Server(String),
    /// The server answered with a well-formed response of the wrong kind
    /// for the request (a server bug, not a transport problem).
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
            Self::Disconnected => f.write_str("server closed the connection"),
            Self::Server(msg) => write!(f, "server error: {msg}"),
            Self::Unexpected(what) => write!(f, "unexpected response kind (wanted {what})"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        Self::Protocol(e)
    }
}

/// A loadgen argument parse/validation error with a user-facing message,
/// mirroring the `csv-index` CLI's typed-error style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError {
    /// The message printed to stderr.
    pub message: String,
}

impl ArgError {
    /// Creates an error from any displayable message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ArgError {}
