//! The per-core worker: owns its connections, pins a `ReadView`, serves
//! frames.
//!
//! A worker multiplexes its connections without an event loop: every
//! stream gets a short read timeout, and the worker sweeps its connection
//! set round-robin — a read that times out costs one syscall and moves on,
//! a read that returns bytes feeds the incremental decoder. Point reads go
//! through the worker's pinned [`ReadView`] (zero atomics per lookup on
//! the RCU path); the view is re-pinned after every write the worker
//! performs and every `view_refresh` reads, bounding how far it can lag
//! writes made on other workers. Hostile bytes never panic the worker: a
//! typed [`ProtocolError`](crate::errors::ProtocolError) closes that one
//! connection and every other connection keeps being served.
//!
//! [`ReadView`]: csv_concurrent::ReadView

use crate::codec::{decode_request, encode_response, Decoded, RecordStream};
use crate::protocol::{Request, Response, ServerStats, WriteOp};
use crate::server::Shared;
use core::ops::ControlFlow;
use csv_common::key::{Key, Value};
use csv_common::sync::Ordering;
use csv_common::traits::{RangeIndex, RemovableIndex, SnapshotIndex};
use csv_concurrent::{ReadPath, ReadView, ShardedIndex};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

/// How long a sweep blocks on one silent connection before moving to the
/// next. Small enough that a 100-connection worker still visits everyone
/// ~20×/second even if all are idle; on loopback a busy connection almost
/// always has bytes ready and never pays it.
const READ_TIMEOUT: Duration = Duration::from_micros(500);

/// How long an idle worker (no connections at all) naps before polling
/// its intake channel again.
const IDLE_NAP: Duration = Duration::from_micros(200);

/// What one worker counted, folded into the
/// [`ServerReport`](crate::server::ServerReport).
#[derive(Debug, Default)]
pub(crate) struct WorkerReport {
    /// Connections this worker closed for sending malformed frames.
    pub(crate) protocol_errors: u64,
}

/// One connection owned by a worker.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet decoded into a full frame.
    inbox: Vec<u8>,
    /// Encoded responses not yet flushed.
    outbox: Vec<u8>,
}

/// The worker's view of the index: the pinned snapshot when the RCU path
/// offers one, refreshed on writes and every `view_refresh` reads.
struct Pinned<I> {
    view: Option<ReadView<I>>,
    reads_since_pin: usize,
    view_refresh: usize,
}

impl<I: SnapshotIndex + RangeIndex> Pinned<I> {
    fn new(index: &ShardedIndex<I>, view_refresh: usize) -> Self {
        Self {
            view: index.read_view(),
            reads_since_pin: 0,
            view_refresh,
        }
    }

    fn repin(&mut self, index: &ShardedIndex<I>) {
        self.view = index.read_view();
        self.reads_since_pin = 0;
    }

    fn before_read(&mut self, index: &ShardedIndex<I>) {
        self.reads_since_pin += 1;
        if self.reads_since_pin >= self.view_refresh {
            self.repin(index);
        }
    }
}

/// Serves one decoded request, appending the encoded response frame to
/// `outbox`. Returns whether this request asked the whole server to stop.
fn handle_request<I>(
    req: Request,
    index: &ShardedIndex<I>,
    pinned: &mut Pinned<I>,
    shared: &Shared,
    outbox: &mut Vec<u8>,
) -> bool
where
    I: SnapshotIndex + RangeIndex + RemovableIndex,
{
    let mut ops = 1u64;
    let mut stop = false;
    let response = match req {
        Request::Get { key } => {
            pinned.before_read(index);
            let value = match &pinned.view {
                Some(view) => view.get(key),
                None => index.get(key),
            };
            Response::Value(value)
        }
        Request::MultiGet { keys } => {
            ops = keys.len() as u64;
            pinned.before_read(index);
            let values = match &pinned.view {
                Some(view) => view.multi_get(&keys),
                None => index.multi_get(&keys),
            };
            Response::Values(values)
        }
        Request::Range { lo, hi, limit } => {
            // Stream records straight into the response frame as the scan
            // produces them — the full result set is never materialised.
            // The scan runs under the pinned per-shard snapshots (RCU) or
            // the live index (locked); `push` refuses the record that
            // would overflow the frame cap and flags the truncation, and a
            // satisfied `limit` stops the scan without flagging it.
            pinned.before_read(index);
            let mut stream = RecordStream::begin(outbox);
            let mut emit = |key: Key, value: Value| {
                if !stream.push(key, value) {
                    return ControlFlow::Break(());
                }
                if limit != 0 && stream.len() >= limit as usize {
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            };
            let _ = match &pinned.view {
                Some(view) => view.range_visit(lo, hi, &mut emit),
                None => index.range_visit(lo, hi, &mut emit),
            };
            stream.finish();
            shared.ops.fetch_add(ops, Ordering::Relaxed);
            return false;
        }
        Request::Insert { key, value } => {
            let fresh = index.insert(key, value);
            pinned.repin(index);
            Response::Inserted(fresh)
        }
        Request::Remove { key } => {
            let removed = index.remove(key);
            pinned.repin(index);
            Response::Removed(removed)
        }
        Request::WriteBatch { ops: batch } => {
            ops = batch.len() as u64;
            // Group commit: one overlay update, one publication, one WAL
            // frame per touched shard instead of one of each per op.
            let group: Vec<csv_concurrent::WriteOp> = batch
                .iter()
                .map(|op| match *op {
                    WriteOp::Insert { key, value } => {
                        csv_concurrent::WriteOp::Insert { key, value }
                    }
                    WriteOp::Remove { key } => csv_concurrent::WriteOp::Remove { key },
                })
                .collect();
            let outcome = index.write_batch(&group);
            pinned.repin(index);
            Response::BatchApplied {
                fresh_inserts: outcome.fresh_inserts as u32,
                hits: outcome.removed as u32,
            }
        }
        Request::Stats => Response::Stats(ServerStats {
            keys: index.len() as u64,
            shards: index.num_shards() as u32,
            workers: shared.workers as u32,
            rcu: index.read_path() == ReadPath::Rcu,
            connections: shared.connections.load(Ordering::Relaxed),
            ops: shared.ops.load(Ordering::Relaxed),
            engine_healthy: shared.engine_is_healthy(),
            maintenance: shared.has_engine,
        }),
        Request::Shutdown => {
            stop = true;
            Response::ShuttingDown
        }
    };
    shared.ops.fetch_add(ops, Ordering::Relaxed);
    encode_response(&response, outbox);
    stop
}

/// Drains every full frame currently in `conn.inbox`, appending responses
/// to `conn.outbox`. Returns `Err(())` when the connection must close
/// (malformed bytes); `Ok(true)` when a `Shutdown` frame was served.
fn drain_frames<I>(
    conn: &mut Conn,
    index: &ShardedIndex<I>,
    pinned: &mut Pinned<I>,
    shared: &Shared,
    report: &mut WorkerReport,
) -> Result<bool, ()>
where
    I: SnapshotIndex + RangeIndex + RemovableIndex,
{
    let mut consumed_total = 0usize;
    let mut saw_shutdown = false;
    loop {
        match decode_request(&conn.inbox[consumed_total..]) {
            Ok(Decoded::Incomplete) => break,
            Ok(Decoded::Frame { value, consumed }) => {
                consumed_total += consumed;
                let stop = handle_request(value, index, pinned, shared, &mut conn.outbox);
                if stop {
                    saw_shutdown = true;
                    break;
                }
            }
            Err(error) => {
                // Typed rejection: answer with the error (best-effort),
                // count it, and have the caller drop the connection. The
                // stream is unsynchronized from here on, so nothing after
                // the bad frame is trusted.
                report.protocol_errors += 1;
                encode_response(&Response::Error(error.to_string()), &mut conn.outbox);
                conn.stream.write_all(&conn.outbox).ok();
                return Err(());
            }
        }
    }
    conn.inbox.drain(..consumed_total);
    Ok(saw_shutdown)
}

/// The worker thread body: adopt connections from the acceptor, sweep
/// them, decode, serve, repeat until the stop flag rises.
pub(crate) fn worker_loop<I>(
    index: Arc<ShardedIndex<I>>,
    shared: Arc<Shared>,
    intake: Receiver<TcpStream>,
    view_refresh: usize,
) -> WorkerReport
where
    I: SnapshotIndex + RangeIndex + RemovableIndex + 'static,
{
    let mut report = WorkerReport::default();
    let mut pinned = Pinned::new(&index, view_refresh);
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = [0u8; 64 * 1024];
    let mut intake_open = true;

    while !shared.stop.load(Ordering::Relaxed) {
        // Adopt whatever the acceptor dealt us since the last sweep.
        while intake_open {
            match intake.try_recv() {
                Ok(stream) => {
                    // The short timeout is what lets one thread multiplex
                    // many blocking sockets; writes stay fully blocking.
                    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_ok()
                        && stream.set_nodelay(true).is_ok()
                    {
                        conns.push(Conn {
                            stream,
                            inbox: Vec::new(),
                            outbox: Vec::new(),
                        });
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    intake_open = false;
                }
            }
        }
        if conns.is_empty() {
            if !intake_open {
                break;
            }
            std::thread::sleep(IDLE_NAP);
            continue;
        }

        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            let mut close = false;
            match conn.stream.read(&mut scratch) {
                Ok(0) => close = true, // orderly remote close
                Ok(n) => {
                    conn.inbox.extend_from_slice(&scratch[..n]);
                    match drain_frames(conn, &index, &mut pinned, &shared, &mut report) {
                        Ok(saw_shutdown) => {
                            if !conn.outbox.is_empty() {
                                if conn.stream.write_all(&conn.outbox).is_err() {
                                    close = true;
                                }
                                conn.outbox.clear();
                            }
                            if saw_shutdown {
                                shared.stop.store(true, Ordering::SeqCst);
                            }
                        }
                        Err(()) => close = true,
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => close = true,
            }
            if close {
                conns.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
    report
}
