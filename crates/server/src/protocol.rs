//! The request/response vocabulary of the serving protocol.
//!
//! Frames on the wire are length-prefixed and CRC-checked (see
//! [`codec`](crate::codec) for the byte layout); this module defines what a
//! decoded frame *means*. The operation set mirrors the sharded index's
//! public surface: point reads (single and batched, so the server can use
//! the predict-then-resolve [`multi_get`] path), range scans, the durable
//! write path, and two control operations (`Stats`, `Shutdown`).
//!
//! [`multi_get`]: csv_concurrent::ShardedIndex::multi_get

use csv_common::key::{Key, KeyValue, Value};

/// Hard ceiling on a frame's payload length. A header declaring more is
/// rejected as [`Oversized`](crate::errors::ProtocolError::Oversized)
/// before any allocation happens, so a hostile 4 GiB length prefix costs
/// the server nothing.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Frame header size: `u32` payload length + `u32` CRC-32 of the payload.
pub const HEADER_LEN: usize = 8;

/// Request opcodes (first payload byte, `0x01..`).
pub mod opcode {
    /// [`Request::Get`](super::Request::Get).
    pub const GET: u8 = 0x01;
    /// [`Request::MultiGet`](super::Request::MultiGet).
    pub const MULTI_GET: u8 = 0x02;
    /// [`Request::Range`](super::Request::Range).
    pub const RANGE: u8 = 0x03;
    /// [`Request::Insert`](super::Request::Insert).
    pub const INSERT: u8 = 0x04;
    /// [`Request::Remove`](super::Request::Remove).
    pub const REMOVE: u8 = 0x05;
    /// [`Request::WriteBatch`](super::Request::WriteBatch).
    pub const WRITE_BATCH: u8 = 0x06;
    /// [`Request::Stats`](super::Request::Stats).
    pub const STATS: u8 = 0x07;
    /// [`Request::Shutdown`](super::Request::Shutdown).
    pub const SHUTDOWN: u8 = 0x08;

    /// [`Response::Value`](super::Response::Value).
    pub const R_VALUE: u8 = 0x81;
    /// [`Response::Values`](super::Response::Values).
    pub const R_VALUES: u8 = 0x82;
    /// [`Response::Records`](super::Response::Records).
    pub const R_RECORDS: u8 = 0x83;
    /// [`Response::Inserted`](super::Response::Inserted).
    pub const R_INSERTED: u8 = 0x84;
    /// [`Response::Removed`](super::Response::Removed).
    pub const R_REMOVED: u8 = 0x85;
    /// [`Response::BatchApplied`](super::Response::BatchApplied).
    pub const R_BATCH: u8 = 0x86;
    /// [`Response::Stats`](super::Response::Stats).
    pub const R_STATS: u8 = 0x87;
    /// [`Response::ShuttingDown`](super::Response::ShuttingDown).
    pub const R_SHUTDOWN: u8 = 0x88;
    /// [`Response::Error`](super::Response::Error).
    pub const R_ERROR: u8 = 0x89;
}

/// One write inside a [`Request::WriteBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert or overwrite `key`.
    Insert {
        /// The key to write.
        key: Key,
        /// The value to store.
        value: Value,
    },
    /// Remove `key` if present.
    Remove {
        /// The key to remove.
        key: Key,
    },
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup of one key.
    Get {
        /// The key to look up.
        key: Key,
    },
    /// Batched point lookup: the server routes the whole batch through the
    /// shard layout once (predict the batch, then resolve shard by shard)
    /// instead of N independent traversals.
    MultiGet {
        /// The keys to look up; results come back in the same order.
        keys: Vec<Key>,
    },
    /// Range scan over `[lo, hi]`, truncated to `limit` records
    /// (`limit == 0` means unlimited).
    Range {
        /// Inclusive lower bound.
        lo: Key,
        /// Inclusive upper bound.
        hi: Key,
        /// Maximum records to return (0 = all).
        limit: u32,
    },
    /// Insert or overwrite one key.
    Insert {
        /// The key to write.
        key: Key,
        /// The value to store.
        value: Value,
    },
    /// Remove one key.
    Remove {
        /// The key to remove.
        key: Key,
    },
    /// Apply a sequence of writes in order on one connection.
    WriteBatch {
        /// The writes, applied front to back.
        ops: Vec<WriteOp>,
    },
    /// Ask for a [`ServerStats`] snapshot.
    Stats,
    /// Ask the whole server (acceptor, every worker, the optional
    /// maintenance engine) to shut down cleanly.
    Shutdown,
}

/// A point-in-time statistics snapshot served by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Live keys in the index.
    pub keys: u64,
    /// Current shard count.
    pub shards: u32,
    /// Worker threads serving connections.
    pub workers: u32,
    /// `true` when reads go through lock-free RCU snapshots, `false` on
    /// the locked baseline.
    pub rcu: bool,
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Operations completed since the server started (each batch entry
    /// counts once).
    pub ops: u64,
    /// `true` while the background maintenance engine is attached and has
    /// not recorded a panic; also `true` when no engine is attached (there
    /// is nothing to be unhealthy).
    pub engine_healthy: bool,
    /// `true` when a maintenance engine is running behind the socket.
    pub maintenance: bool,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Get`].
    Value(Option<Value>),
    /// Answer to [`Request::MultiGet`], in request order.
    Values(Vec<Option<Value>>),
    /// Answer to [`Request::Range`].
    Records {
        /// The records, ascending by key.
        records: Vec<KeyValue>,
        /// `true` when the server cut the scan at the frame cap
        /// ([`MAX_FRAME_LEN`]) before the range (or the requested limit)
        /// was exhausted; the returned records are a complete prefix.
        /// Reaching the requested `limit` is *not* truncation.
        truncated: bool,
    },
    /// Answer to [`Request::Insert`]: `true` when the key was new.
    Inserted(bool),
    /// Answer to [`Request::Remove`]: the removed value, if any.
    Removed(Option<Value>),
    /// Answer to [`Request::WriteBatch`]: how many inserts created new
    /// keys and how many removes found theirs.
    BatchApplied {
        /// Inserts that created a new key.
        fresh_inserts: u32,
        /// Removes that found their key.
        hits: u32,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// Answer to [`Request::Shutdown`], sent before the server stops.
    ShuttingDown,
    /// The request decoded but could not be served.
    Error(String),
}
