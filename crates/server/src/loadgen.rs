//! The YCSB-style load generator behind the `csv-loadgen` binary.
//!
//! Drives N concurrent connections against a running server, each replaying
//! a pre-generated operation mix until a wall-clock deadline, recording
//! per-request latency into a thread-local [`LatencyHistogram`] (no
//! cross-thread synchronisation on the hot path) and merging the shards at
//! the end — the merge ≡ single-stream equivalence is pinned by unit tests
//! in `csv_common::latency`.
//!
//! The generator never asks the server for its key space: the server loads
//! a deterministic dataset (`--dataset/--size/--seed` on `csv-index
//! --serve`), so passing the same three flags here regenerates the exact
//! same keys client-side.

use crate::client::Client;
use crate::errors::{ArgError, ClientError};
use crate::protocol::WriteOp;
use csv_common::key::Key;
use csv_common::latency::LatencyHistogram;
use csv_datasets::{
    Dataset, MixedWorkload, MixedWorkloadSpec, Operation, OperationMix, Popularity,
};
use std::time::{Duration, Instant};

/// Which YCSB-style mix to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixChoice {
    /// 50% reads / 50% updates, Zipfian popularity.
    YcsbA,
    /// 95% reads / 5% updates, Zipfian popularity.
    YcsbB,
    /// 100% reads, Zipfian popularity.
    YcsbC,
    /// 95% short scans / 5% inserts.
    YcsbE,
    /// Reads, inserts, removes and scans.
    Churn,
}

impl MixChoice {
    /// Parses a mix name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, ArgError> {
        match s.to_ascii_lowercase().as_str() {
            "ycsb-a" => Ok(Self::YcsbA),
            "ycsb-b" => Ok(Self::YcsbB),
            "ycsb-c" | "read-only" | "readonly" => Ok(Self::YcsbC),
            "ycsb-e" => Ok(Self::YcsbE),
            "churn" => Ok(Self::Churn),
            other => Err(ArgError::new(format!(
                "unknown mix '{other}' (expected ycsb-a|ycsb-b|ycsb-c|ycsb-e|churn)"
            ))),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::YcsbA => "ycsb-a",
            Self::YcsbB => "ycsb-b",
            Self::YcsbC => "ycsb-c",
            Self::YcsbE => "ycsb-e",
            Self::Churn => "churn",
        }
    }

    fn spec(&self) -> (OperationMix, Popularity) {
        match self {
            Self::YcsbA => (OperationMix::ycsb_a(), Popularity::Zipfian(0.99)),
            Self::YcsbB => (OperationMix::ycsb_b(), Popularity::Zipfian(0.99)),
            Self::YcsbC => (OperationMix::ycsb_c(), Popularity::Zipfian(0.99)),
            // YCSB-E scans start from Zipfian-popular keys: the hot ranges
            // get rescanned, which is what makes the scan path contend with
            // the overlay/fold machinery instead of striding cold data.
            Self::YcsbE => (OperationMix::ycsb_e(), Popularity::Zipfian(0.99)),
            Self::Churn => (OperationMix::churn(), Popularity::Uniform),
        }
    }
}

/// Everything one load-generation run needs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent connections (one thread each).
    pub connections: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Operation mix.
    pub mix: MixChoice,
    /// Dataset analogue the server was loaded with.
    pub dataset: Dataset,
    /// Key count the server was loaded with.
    pub size: usize,
    /// Seed the server was loaded with.
    pub seed: u64,
    /// Consecutive reads grouped into one `MultiGet` frame (1 = plain
    /// `Get` per read).
    pub batch: usize,
    /// Consecutive writes grouped into one `WriteBatch` frame — the
    /// group-committed server path (1 = plain `Insert`/`Remove` per write).
    pub write_batch: usize,
    /// Records per generated scan *and* the `limit` sent on each `Range`
    /// frame (0 = keep the mix's default width of 100 and send no limit).
    /// Start keys stay deterministic — same dataset/seed, same scans.
    pub range: u32,
    /// Operations pre-generated per connection, cycled until the deadline.
    pub ops_per_conn: usize,
    /// Send `Shutdown` to the server after the run.
    pub shutdown: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4711".to_string(),
            connections: 4,
            duration: Duration::from_secs(5),
            mix: MixChoice::YcsbB,
            dataset: Dataset::Genome,
            size: 200_000,
            seed: 42,
            batch: 1,
            write_batch: 1,
            range: 0,
            ops_per_conn: 100_000,
            shutdown: false,
        }
    }
}

/// What a run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Wall-clock time the connections were driving load.
    pub elapsed: Duration,
    /// Operations completed across all connections (each batch entry
    /// counts once).
    pub completed: u64,
    /// Requests that failed (transport or server error).
    pub errors: u64,
    /// Connections that participated.
    pub connections: usize,
    /// Per-request latency over all connections (a `MultiGet` is one
    /// sample: the client-observed cost of the whole wire request).
    pub latency: LatencyHistogram,
}

impl LoadgenReport {
    /// Completed operations per second.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The two lines the binary prints.
    pub fn render(&self) -> String {
        format!(
            "loadgen: {} ops over {} connections in {:.2}s = {:.0} ops/s ({} errors)\nlatency: {}\n",
            self.completed,
            self.connections,
            self.elapsed.as_secs_f64(),
            self.throughput(),
            self.errors,
            self.latency.summary_line()
        )
    }
}

/// One connection's share of the run.
struct ConnOutcome {
    latency: LatencyHistogram,
    completed: u64,
    errors: u64,
}

fn drive_connection(
    config: &LoadgenConfig,
    conn_id: usize,
    deadline: Instant,
) -> Result<ConnOutcome, ClientError> {
    let mut client = Client::connect(config.addr.as_str())?;
    let keys = config.dataset.generate(config.size, config.seed);
    let (mix, popularity) = config.mix.spec();
    let operations = MixedWorkload::generate(
        &keys,
        &MixedWorkloadSpec {
            num_operations: config.ops_per_conn,
            mix,
            popularity,
            scan_width: if config.range > 0 {
                config.range as usize
            } else {
                100
            },
            // Distinct per connection so N connections don't replay N
            // identical streams in lockstep.
            seed: config.seed ^ 0x10ad ^ ((conn_id as u64) << 32),
        },
    )
    .operations;

    let mut latency = LatencyHistogram::new();
    let mut completed = 0u64;
    let mut errors = 0u64;
    let mut read_batch: Vec<Key> = Vec::with_capacity(config.batch);
    let mut write_buffer: Vec<WriteOp> = Vec::with_capacity(config.write_batch);
    let mut op_cursor = 0usize;

    let issue_reads = |client: &mut Client,
                       batch: &mut Vec<Key>,
                       latency: &mut LatencyHistogram,
                       completed: &mut u64,
                       errors: &mut u64|
     -> Result<(), ClientError> {
        if batch.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        let outcome = if batch.len() == 1 {
            client.get(batch[0]).map(|_| ())
        } else {
            client.multi_get(batch).map(|_| ())
        };
        match outcome {
            Ok(()) => {
                latency.record(started.elapsed());
                *completed += batch.len() as u64;
            }
            Err(ClientError::Server(_)) => *errors += 1,
            Err(fatal) => return Err(fatal),
        }
        batch.clear();
        Ok(())
    };

    let issue_writes = |client: &mut Client,
                        buffer: &mut Vec<WriteOp>,
                        latency: &mut LatencyHistogram,
                        completed: &mut u64,
                        errors: &mut u64|
     -> Result<(), ClientError> {
        if buffer.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        let outcome = if buffer.len() == 1 {
            match buffer[0] {
                WriteOp::Insert { key, value } => client.insert(key, value).map(|_| ()),
                WriteOp::Remove { key } => client.remove(key).map(|_| ()),
            }
        } else {
            client.write_batch(buffer).map(|_| ())
        };
        match outcome {
            Ok(()) => {
                latency.record(started.elapsed());
                *completed += buffer.len() as u64;
            }
            Err(ClientError::Server(_)) => *errors += 1,
            Err(fatal) => return Err(fatal),
        }
        buffer.clear();
        Ok(())
    };

    while Instant::now() < deadline {
        let op = operations[op_cursor % operations.len()];
        op_cursor += 1;
        // A read flushes buffered writes (so it observes them) and a write
        // flushes buffered reads, keeping ordering close to the generated
        // stream; only same-kind runs coalesce into one frame.
        match op {
            Operation::Read(key) => {
                issue_writes(
                    &mut client,
                    &mut write_buffer,
                    &mut latency,
                    &mut completed,
                    &mut errors,
                )?;
                read_batch.push(key);
                if read_batch.len() >= config.batch.max(1) {
                    issue_reads(
                        &mut client,
                        &mut read_batch,
                        &mut latency,
                        &mut completed,
                        &mut errors,
                    )?;
                }
            }
            Operation::Insert(key) | Operation::Remove(key) => {
                issue_reads(
                    &mut client,
                    &mut read_batch,
                    &mut latency,
                    &mut completed,
                    &mut errors,
                )?;
                write_buffer.push(match op {
                    Operation::Insert(_) => WriteOp::Insert { key, value: key },
                    _ => WriteOp::Remove { key },
                });
                if write_buffer.len() >= config.write_batch.max(1) {
                    issue_writes(
                        &mut client,
                        &mut write_buffer,
                        &mut latency,
                        &mut completed,
                        &mut errors,
                    )?;
                }
            }
            Operation::Scan(lo, hi) => {
                issue_reads(
                    &mut client,
                    &mut read_batch,
                    &mut latency,
                    &mut completed,
                    &mut errors,
                )?;
                issue_writes(
                    &mut client,
                    &mut write_buffer,
                    &mut latency,
                    &mut completed,
                    &mut errors,
                )?;
                let started = Instant::now();
                match client.range(lo, hi, config.range) {
                    Ok(_) => {
                        latency.record(started.elapsed());
                        completed += 1;
                    }
                    Err(ClientError::Server(_)) => errors += 1,
                    Err(fatal) => return Err(fatal),
                }
            }
        }
    }
    issue_reads(
        &mut client,
        &mut read_batch,
        &mut latency,
        &mut completed,
        &mut errors,
    )?;
    issue_writes(
        &mut client,
        &mut write_buffer,
        &mut latency,
        &mut completed,
        &mut errors,
    )?;
    Ok(ConnOutcome {
        latency,
        completed,
        errors,
    })
}

/// Runs the whole load generation: N connection threads until the
/// deadline, merged report afterwards, optional `Shutdown` at the end.
pub fn run_loadgen(config: &LoadgenConfig) -> Result<LoadgenReport, ClientError> {
    let started = Instant::now();
    let deadline = started + config.duration;
    let outcomes: Vec<Result<ConnOutcome, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections.max(1))
            .map(|conn_id| scope.spawn(move || drive_connection(config, conn_id, deadline)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    let mut latency = LatencyHistogram::new();
    let mut completed = 0u64;
    let mut errors = 0u64;
    for outcome in outcomes {
        // A connection that died early (e.g. the server went away) is a
        // hard failure: partial numbers would silently misreport.
        let outcome = outcome?;
        latency.merge(&outcome.latency);
        completed += outcome.completed;
        errors += outcome.errors;
    }
    if config.shutdown {
        Client::connect(config.addr.as_str())?.shutdown()?;
    }
    Ok(LoadgenReport {
        elapsed,
        completed,
        errors,
        connections: config.connections.max(1),
        latency,
    })
}

// ---------------------------------------------------------------------------
// Argument parsing for the binary
// ---------------------------------------------------------------------------

impl LoadgenConfig {
    /// The usage string printed on `--help` or a parse error.
    pub fn usage() -> &'static str {
        "csv-loadgen [--addr HOST:PORT] [--connections N] [--duration SECS]\n\
         \u{20}           [--mix ycsb-a|ycsb-b|ycsb-c|ycsb-e|churn] [--batch N] [--write-batch N]\n\
         \u{20}           [--range N] [--dataset facebook|covid|osm|genome] [--size N] [--seed S]\n\
         \u{20}           [--ops N] [--shutdown]\n\
         \n\
         Drives N concurrent connections against a running `csv-index --serve` instance\n\
         through a YCSB-style mix for the given duration and reports throughput plus a\n\
         p50/p99/p99.9 latency histogram. --dataset/--size/--seed must match the serving\n\
         process so the generated key space lines up (the defaults match csv-index's).\n\
         --batch groups consecutive reads into one MultiGet frame; --write-batch groups\n\
         consecutive writes into one group-committed WriteBatch frame; --range N makes\n\
         each generated scan N records wide and sends N as the Range frame's limit\n\
         (0 = the mix's default width of 100, no limit — start keys are deterministic\n\
         either way); --ops sets how\n\
         many operations are pre-generated per connection (cycled until the deadline);\n\
         --shutdown sends the server a clean Shutdown once the run completes."
    }

    /// Parses `--flag value` style arguments, rejecting zero/invalid
    /// values with typed errors (same contract as the `csv-index` CLI).
    pub fn parse(args: &[String]) -> Result<Self, ArgError> {
        let mut out = Self::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if flag == "--help" || flag == "-h" {
                return Err(ArgError::new(Self::usage()));
            }
            if flag == "--shutdown" {
                out.shutdown = true;
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| ArgError::new(format!("flag {flag} expects a value")))?;
            match flag.as_str() {
                "--addr" => out.addr = value.clone(),
                "--connections" => {
                    out.connections = parse_number(flag, value)? as usize;
                    if out.connections == 0 {
                        return Err(ArgError::new("--connections must be at least 1"));
                    }
                }
                "--duration" => {
                    let secs = value.parse::<f64>().map_err(|_| {
                        ArgError::new(format!("--duration expects seconds, got '{value}'"))
                    })?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(ArgError::new("--duration must be > 0 seconds"));
                    }
                    out.duration = Duration::from_secs_f64(secs);
                }
                "--mix" => out.mix = MixChoice::parse(value)?,
                "--batch" => {
                    out.batch = parse_number(flag, value)? as usize;
                    if out.batch == 0 {
                        return Err(ArgError::new("--batch must be at least 1"));
                    }
                }
                "--write-batch" => {
                    out.write_batch = parse_number(flag, value)? as usize;
                    if out.write_batch == 0 {
                        return Err(ArgError::new("--write-batch must be at least 1"));
                    }
                }
                "--dataset" => {
                    out.dataset = match value.to_ascii_lowercase().as_str() {
                        "facebook" | "fb" => Dataset::Facebook,
                        "covid" => Dataset::Covid,
                        "osm" => Dataset::Osm,
                        "genome" => Dataset::Genome,
                        other => {
                            return Err(ArgError::new(format!(
                                "unknown dataset '{other}' (expected facebook|covid|osm|genome)"
                            )))
                        }
                    }
                }
                "--size" => {
                    out.size = parse_number(flag, value)? as usize;
                    if out.size < 2 {
                        return Err(ArgError::new("--size must be at least 2"));
                    }
                }
                "--range" => {
                    // 0 is valid (keep the mix default); anything
                    // non-numeric or negative fails the u64 parse, and a
                    // width beyond u32 could never fit a frame's limit
                    // field anyway.
                    let n = parse_number(flag, value)?;
                    out.range = u32::try_from(n).map_err(|_| {
                        ArgError::new(format!("--range must fit in a u32, got '{value}'"))
                    })?;
                }
                "--seed" => out.seed = parse_number(flag, value)?,
                "--ops" => {
                    out.ops_per_conn = parse_number(flag, value)? as usize;
                    if out.ops_per_conn == 0 {
                        return Err(ArgError::new("--ops must be at least 1"));
                    }
                }
                other => {
                    return Err(ArgError::new(format!(
                        "unknown flag '{other}'\n\n{}",
                        Self::usage()
                    )))
                }
            }
        }
        Ok(out)
    }
}

fn parse_number(flag: &str, value: &str) -> Result<u64, ArgError> {
    value
        .replace('_', "")
        .parse::<u64>()
        .map_err(|_| ArgError::new(format!("{flag} expects an integer, got '{value}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<LoadgenConfig, ArgError> {
        LoadgenConfig::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_match_the_serving_defaults() {
        let config = parse(&[]).unwrap();
        assert_eq!(config.dataset, Dataset::Genome);
        assert_eq!(config.size, 200_000);
        assert_eq!(config.seed, 42);
        assert_eq!(config.mix, MixChoice::YcsbB);
        assert!(!config.shutdown);
    }

    #[test]
    fn full_flag_set_round_trips() {
        let config = parse(&[
            "--addr",
            "127.0.0.1:9999",
            "--connections",
            "8",
            "--duration",
            "2.5",
            "--mix",
            "ycsb-a",
            "--batch",
            "64",
            "--write-batch",
            "32",
            "--range",
            "250",
            "--dataset",
            "osm",
            "--size",
            "50_000",
            "--seed",
            "7",
            "--ops",
            "1000",
            "--shutdown",
        ])
        .unwrap();
        assert_eq!(config.addr, "127.0.0.1:9999");
        assert_eq!(config.connections, 8);
        assert_eq!(config.duration, Duration::from_secs_f64(2.5));
        assert_eq!(config.mix, MixChoice::YcsbA);
        assert_eq!(config.batch, 64);
        assert_eq!(config.write_batch, 32);
        assert_eq!(config.range, 250);
        assert_eq!(config.dataset, Dataset::Osm);
        assert_eq!(config.size, 50_000);
        assert_eq!(config.seed, 7);
        assert_eq!(config.ops_per_conn, 1_000);
        assert!(config.shutdown);
    }

    #[test]
    fn zero_and_invalid_values_are_rejected() {
        assert!(parse(&["--connections", "0"])
            .unwrap_err()
            .message
            .contains("at least 1"));
        assert!(parse(&["--duration", "0"])
            .unwrap_err()
            .message
            .contains("> 0"));
        assert!(parse(&["--duration", "-3"])
            .unwrap_err()
            .message
            .contains("> 0"));
        assert!(parse(&["--duration", "NaN"])
            .unwrap_err()
            .message
            .contains("> 0"));
        assert!(parse(&["--batch", "0"])
            .unwrap_err()
            .message
            .contains("at least 1"));
        assert!(parse(&["--write-batch", "0"])
            .unwrap_err()
            .message
            .contains("at least 1"));
        assert!(parse(&["--write-batch", "x"])
            .unwrap_err()
            .message
            .contains("integer"));
        assert!(parse(&["--size", "1"])
            .unwrap_err()
            .message
            .contains("at least 2"));
        assert!(parse(&["--ops", "0"])
            .unwrap_err()
            .message
            .contains("at least 1"));
        assert!(parse(&["--range", "x"])
            .unwrap_err()
            .message
            .contains("integer"));
        assert!(parse(&["--range", "-1"])
            .unwrap_err()
            .message
            .contains("integer"));
        assert!(parse(&["--range", "4294967296"])
            .unwrap_err()
            .message
            .contains("u32"));
        // 0 is valid: it means "keep the mix's default scan width".
        assert_eq!(parse(&["--range", "0"]).unwrap().range, 0);
        assert!(parse(&["--mix", "ycsb-z"])
            .unwrap_err()
            .message
            .contains("unknown mix"));
        assert!(parse(&["--connections", "x"])
            .unwrap_err()
            .message
            .contains("integer"));
        assert!(parse(&["--bogus", "1"])
            .unwrap_err()
            .message
            .contains("unknown flag"));
        assert!(parse(&["--connections"])
            .unwrap_err()
            .message
            .contains("expects a value"));
        assert!(parse(&["--help"])
            .unwrap_err()
            .message
            .contains("csv-loadgen"));
    }

    #[test]
    fn every_mix_name_parses() {
        for (name, expected) in [
            ("ycsb-a", MixChoice::YcsbA),
            ("YCSB-B", MixChoice::YcsbB),
            ("ycsb-c", MixChoice::YcsbC),
            ("read-only", MixChoice::YcsbC),
            ("ycsb-e", MixChoice::YcsbE),
            ("churn", MixChoice::Churn),
        ] {
            assert_eq!(MixChoice::parse(name).unwrap(), expected);
            assert!(!expected.name().is_empty());
        }
    }
}
