//! Byte-level framing: encode/decode requests and responses.
//!
//! Every frame is `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`
//! with `payload = [opcode: u8][fields, little-endian]`. The CRC is the
//! same table-driven CRC-32 the durability crate guards its WAL records
//! with, so a flipped bit anywhere in the payload is caught before the
//! opcode is even looked at.
//!
//! Decoding is incremental: [`decode_request`]/[`decode_response`] take
//! whatever bytes have arrived so far and either report
//! [`Decoded::Incomplete`] (keep reading), a complete frame plus how many
//! bytes it consumed, or a typed [`ProtocolError`] — never a panic, no
//! matter what the bytes are. Oversized length prefixes are rejected
//! *before* any buffering decision, so a hostile header cannot make the
//! server allocate.

use crate::errors::ProtocolError;
use crate::protocol::{opcode, Request, Response, ServerStats, WriteOp, HEADER_LEN, MAX_FRAME_LEN};
use csv_common::key::{Key, KeyValue, Value};
use csv_durability::crc::crc32;

/// Outcome of feeding buffered bytes to a decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded<T> {
    /// Not enough bytes for a whole frame yet; read more and retry.
    Incomplete,
    /// One complete frame.
    Frame {
        /// The decoded value.
        value: T,
        /// Bytes consumed from the front of the buffer (header + payload);
        /// the caller drains these before decoding the next frame.
        consumed: usize,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Wraps a finished payload in the `[len][crc]` header, in place: `buf`
/// must contain exactly the payload starting at `start`.
fn seal(buf: &mut Vec<u8>, start: usize) {
    let payload_len = buf.len() - start;
    debug_assert!(
        payload_len <= MAX_FRAME_LEN,
        "encoder produced an oversized frame"
    );
    let crc = crc32(&buf[start..]);
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc.to_le_bytes());
    // Splice the header in front of the payload.
    buf.splice(start..start, header);
}

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_value(buf: &mut Vec<u8>, v: Option<Value>) {
    match v {
        Some(v) => {
            put_u8(buf, 1);
            put_u64(buf, v);
        }
        None => put_u8(buf, 0),
    }
}

/// Appends one encoded request frame to `buf`.
pub fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    let start = buf.len();
    match req {
        Request::Get { key } => {
            put_u8(buf, opcode::GET);
            put_u64(buf, *key);
        }
        Request::MultiGet { keys } => {
            put_u8(buf, opcode::MULTI_GET);
            put_u32(buf, keys.len() as u32);
            for &key in keys {
                put_u64(buf, key);
            }
        }
        Request::Range { lo, hi, limit } => {
            put_u8(buf, opcode::RANGE);
            put_u64(buf, *lo);
            put_u64(buf, *hi);
            put_u32(buf, *limit);
        }
        Request::Insert { key, value } => {
            put_u8(buf, opcode::INSERT);
            put_u64(buf, *key);
            put_u64(buf, *value);
        }
        Request::Remove { key } => {
            put_u8(buf, opcode::REMOVE);
            put_u64(buf, *key);
        }
        Request::WriteBatch { ops } => {
            put_u8(buf, opcode::WRITE_BATCH);
            put_u32(buf, ops.len() as u32);
            for op in ops {
                match op {
                    WriteOp::Insert { key, value } => {
                        put_u8(buf, 0);
                        put_u64(buf, *key);
                        put_u64(buf, *value);
                    }
                    WriteOp::Remove { key } => {
                        put_u8(buf, 1);
                        put_u64(buf, *key);
                    }
                }
            }
        }
        Request::Stats => put_u8(buf, opcode::STATS),
        Request::Shutdown => put_u8(buf, opcode::SHUTDOWN),
    }
    seal(buf, start);
}

/// Appends one encoded response frame to `buf`.
pub fn encode_response(resp: &Response, buf: &mut Vec<u8>) {
    let start = buf.len();
    match resp {
        Response::Value(v) => {
            put_u8(buf, opcode::R_VALUE);
            put_opt_value(buf, *v);
        }
        Response::Values(values) => {
            put_u8(buf, opcode::R_VALUES);
            put_u32(buf, values.len() as u32);
            for &v in values {
                put_opt_value(buf, v);
            }
        }
        Response::Records { records, truncated } => {
            let mut stream = RecordStream::begin(buf);
            for r in records {
                if !stream.push(r.key, r.value) {
                    break;
                }
            }
            if *truncated {
                stream.mark_truncated();
            }
            stream.finish();
            return;
        }
        Response::Inserted(fresh) => {
            put_u8(buf, opcode::R_INSERTED);
            put_u8(buf, u8::from(*fresh));
        }
        Response::Removed(v) => {
            put_u8(buf, opcode::R_REMOVED);
            put_opt_value(buf, *v);
        }
        Response::BatchApplied {
            fresh_inserts,
            hits,
        } => {
            put_u8(buf, opcode::R_BATCH);
            put_u32(buf, *fresh_inserts);
            put_u32(buf, *hits);
        }
        Response::Stats(stats) => {
            put_u8(buf, opcode::R_STATS);
            put_u64(buf, stats.keys);
            put_u32(buf, stats.shards);
            put_u32(buf, stats.workers);
            put_u8(buf, u8::from(stats.rcu));
            put_u64(buf, stats.connections);
            put_u64(buf, stats.ops);
            put_u8(buf, u8::from(stats.engine_healthy));
            put_u8(buf, u8::from(stats.maintenance));
        }
        Response::ShuttingDown => put_u8(buf, opcode::R_SHUTDOWN),
        Response::Error(msg) => {
            put_u8(buf, opcode::R_ERROR);
            let bytes = msg.as_bytes();
            // An error message is advisory; truncate rather than overflow
            // the frame limit.
            let take = bytes.len().min(MAX_FRAME_LEN - 16);
            put_u32(buf, take as u32);
            buf.extend_from_slice(&bytes[..take]);
        }
    }
    seal(buf, start);
}

/// Largest number of records a [`Response::Records`] frame can carry:
/// `MAX_FRAME_LEN` minus the opcode, truncation flag and count, in 16-byte
/// records.
pub const MAX_RECORDS_PER_FRAME: usize = (MAX_FRAME_LEN - 6) / 16;

/// Streaming encoder for a [`Response::Records`] frame: records are
/// appended to the wire buffer as the index scan produces them — the
/// server never materialises the result set. `push` refuses the record
/// that would overflow [`MAX_FRAME_LEN`] and marks the frame truncated;
/// `finish` backpatches the truncation flag and record count and seals
/// the `[len][crc]` header. Dropping the stream without calling `finish`
/// leaves a partial frame in the buffer — always finish it.
pub struct RecordStream<'a> {
    buf: &'a mut Vec<u8>,
    /// Frame start in `buf` (where the header gets spliced).
    start: usize,
    count: u32,
    truncated: bool,
}

impl<'a> RecordStream<'a> {
    /// Starts a records frame at the current end of `buf`.
    pub fn begin(buf: &'a mut Vec<u8>) -> Self {
        let start = buf.len();
        put_u8(buf, opcode::R_RECORDS);
        put_u8(buf, 0); // truncation flag, backpatched by `finish`
        put_u32(buf, 0); // record count, backpatched by `finish`
        Self {
            buf,
            start,
            count: 0,
            truncated: false,
        }
    }

    /// Appends one record. Returns `false` — and marks the frame truncated
    /// — when the record would push the payload past [`MAX_FRAME_LEN`];
    /// the caller must stop pushing.
    pub fn push(&mut self, key: Key, value: Value) -> bool {
        if self.buf.len() - self.start + 16 > MAX_FRAME_LEN {
            self.truncated = true;
            return false;
        }
        put_u64(self.buf, key);
        put_u64(self.buf, value);
        self.count += 1;
        true
    }

    /// Records pushed so far.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// `true` while no record has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Flags the frame as truncated (also set automatically when `push`
    /// hits the frame cap).
    pub fn mark_truncated(&mut self) {
        self.truncated = true;
    }

    /// Backpatches the truncation flag and record count, then seals the
    /// frame header.
    pub fn finish(self) {
        self.buf[self.start + 1] = u8::from(self.truncated);
        self.buf[self.start + 2..self.start + 6].copy_from_slice(&self.count.to_le_bytes());
        seal(self.buf, self.start);
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over one payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(ProtocolError::Truncated)?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn opt_value(&mut self) -> Result<Option<Value>, ProtocolError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(ProtocolError::Malformed("option tag must be 0 or 1")),
        }
    }

    /// Reads a `u32` element count and sanity-checks it against the bytes
    /// actually left, so a hostile count cannot drive a huge
    /// `Vec::with_capacity` before the per-element reads fail.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.bytes.len() - self.pos {
            return Err(ProtocolError::Truncated);
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(
                "trailing bytes after the last field",
            ))
        }
    }
}

/// Extracts the next complete, CRC-verified payload from the buffer front.
fn next_payload(buf: &[u8]) -> Result<Decoded<&[u8]>, ProtocolError> {
    if buf.len() < HEADER_LEN {
        return Ok(Decoded::Incomplete);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    if len == 0 {
        // Even control frames carry at least the opcode byte.
        return Err(ProtocolError::Malformed("empty payload"));
    }
    let expected = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let Some(payload) = buf[HEADER_LEN..].get(..len) else {
        return Ok(Decoded::Incomplete);
    };
    let found = crc32(payload);
    if found != expected {
        return Err(ProtocolError::BadCrc { expected, found });
    }
    Ok(Decoded::Frame {
        value: payload,
        consumed: HEADER_LEN + len,
    })
}

/// Decodes the next request frame from the front of `buf`.
pub fn decode_request(buf: &[u8]) -> Result<Decoded<Request>, ProtocolError> {
    let (payload, consumed) = match next_payload(buf)? {
        Decoded::Incomplete => return Ok(Decoded::Incomplete),
        Decoded::Frame { value, consumed } => (value, consumed),
    };
    let mut r = Reader::new(&payload[1..]);
    let value = match payload[0] {
        opcode::GET => Request::Get { key: r.u64()? },
        opcode::MULTI_GET => {
            let n = r.count(8)?;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(r.u64()?);
            }
            Request::MultiGet { keys }
        }
        opcode::RANGE => {
            let lo = r.u64()?;
            let hi = r.u64()?;
            let limit = r.u32()?;
            if lo > hi {
                return Err(ProtocolError::Malformed("range lower bound above upper"));
            }
            Request::Range { lo, hi, limit }
        }
        opcode::INSERT => Request::Insert {
            key: r.u64()?,
            value: r.u64()?,
        },
        opcode::REMOVE => Request::Remove { key: r.u64()? },
        opcode::WRITE_BATCH => {
            let n = r.count(9)?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(match r.u8()? {
                    0 => WriteOp::Insert {
                        key: r.u64()?,
                        value: r.u64()?,
                    },
                    1 => WriteOp::Remove { key: r.u64()? },
                    _ => return Err(ProtocolError::Malformed("write-op tag must be 0 or 1")),
                });
            }
            Request::WriteBatch { ops }
        }
        opcode::STATS => Request::Stats,
        opcode::SHUTDOWN => Request::Shutdown,
        other => return Err(ProtocolError::UnknownOpcode(other)),
    };
    r.finish()?;
    Ok(Decoded::Frame { value, consumed })
}

/// Decodes the next response frame from the front of `buf`.
pub fn decode_response(buf: &[u8]) -> Result<Decoded<Response>, ProtocolError> {
    let (payload, consumed) = match next_payload(buf)? {
        Decoded::Incomplete => return Ok(Decoded::Incomplete),
        Decoded::Frame { value, consumed } => (value, consumed),
    };
    let mut r = Reader::new(&payload[1..]);
    let value = match payload[0] {
        opcode::R_VALUE => Response::Value(r.opt_value()?),
        opcode::R_VALUES => {
            let n = r.count(1)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.opt_value()?);
            }
            Response::Values(values)
        }
        opcode::R_RECORDS => {
            let truncated = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(ProtocolError::Malformed("truncation flag must be 0 or 1")),
            };
            let n = r.count(16)?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                let key: Key = r.u64()?;
                let value: Value = r.u64()?;
                records.push(KeyValue { key, value });
            }
            Response::Records { records, truncated }
        }
        opcode::R_INSERTED => match r.u8()? {
            0 => Response::Inserted(false),
            1 => Response::Inserted(true),
            _ => return Err(ProtocolError::Malformed("bool must be 0 or 1")),
        },
        opcode::R_REMOVED => Response::Removed(r.opt_value()?),
        opcode::R_BATCH => Response::BatchApplied {
            fresh_inserts: r.u32()?,
            hits: r.u32()?,
        },
        opcode::R_STATS => {
            let keys = r.u64()?;
            let shards = r.u32()?;
            let workers = r.u32()?;
            let rcu = r.u8()? != 0;
            let connections = r.u64()?;
            let ops = r.u64()?;
            let engine_healthy = r.u8()? != 0;
            let maintenance = r.u8()? != 0;
            Response::Stats(ServerStats {
                keys,
                shards,
                workers,
                rcu,
                connections,
                ops,
                engine_healthy,
                maintenance,
            })
        }
        opcode::R_SHUTDOWN => Response::ShuttingDown,
        opcode::R_ERROR => {
            let n = r.count(1)?;
            let bytes = r.take(n)?;
            let msg = std::str::from_utf8(bytes)
                .map_err(|_| ProtocolError::Malformed("error message is not UTF-8"))?;
            Response::Error(msg.to_string())
        }
        other => return Err(ProtocolError::UnknownOpcode(other)),
    };
    r.finish()?;
    Ok(Decoded::Frame { value, consumed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        match decode_request(&buf).unwrap() {
            Decoded::Frame { value, consumed } => {
                assert_eq!(value, req);
                assert_eq!(consumed, buf.len());
            }
            Decoded::Incomplete => panic!("complete frame decoded as incomplete"),
        }
    }

    fn round_trip_response(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        match decode_response(&buf).unwrap() {
            Decoded::Frame { value, consumed } => {
                assert_eq!(value, resp);
                assert_eq!(consumed, buf.len());
            }
            Decoded::Incomplete => panic!("complete frame decoded as incomplete"),
        }
    }

    #[test]
    fn every_frame_kind_round_trips() {
        round_trip_request(Request::Get { key: 42 });
        round_trip_request(Request::MultiGet {
            keys: vec![1, u64::MAX, 0],
        });
        round_trip_request(Request::Range {
            lo: 5,
            hi: 500,
            limit: 0,
        });
        round_trip_request(Request::Insert { key: 7, value: 9 });
        round_trip_request(Request::Remove { key: 7 });
        round_trip_request(Request::WriteBatch {
            ops: vec![
                WriteOp::Insert { key: 1, value: 2 },
                WriteOp::Remove { key: 3 },
            ],
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_response(Response::Value(Some(9)));
        round_trip_response(Response::Value(None));
        round_trip_response(Response::Values(vec![Some(1), None, Some(u64::MAX)]));
        round_trip_response(Response::Records {
            records: vec![KeyValue { key: 1, value: 2 }],
            truncated: false,
        });
        round_trip_response(Response::Records {
            records: vec![KeyValue { key: 3, value: 4 }],
            truncated: true,
        });
        round_trip_response(Response::Inserted(true));
        round_trip_response(Response::Removed(None));
        round_trip_response(Response::BatchApplied {
            fresh_inserts: 3,
            hits: 1,
        });
        round_trip_response(Response::Stats(ServerStats {
            keys: 10,
            shards: 4,
            workers: 2,
            rcu: true,
            connections: 5,
            ops: 999,
            engine_healthy: true,
            maintenance: false,
        }));
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Error("nope".to_string()));
    }

    #[test]
    fn two_frames_back_to_back_decode_in_order() {
        let mut buf = Vec::new();
        encode_request(&Request::Get { key: 1 }, &mut buf);
        encode_request(&Request::Stats, &mut buf);
        let Decoded::Frame { value, consumed } = decode_request(&buf).unwrap() else {
            panic!("first frame must decode");
        };
        assert_eq!(value, Request::Get { key: 1 });
        let Decoded::Frame {
            value,
            consumed: c2,
        } = decode_request(&buf[consumed..]).unwrap()
        else {
            panic!("second frame must decode");
        };
        assert_eq!(value, Request::Stats);
        assert_eq!(consumed + c2, buf.len());
    }

    #[test]
    fn every_strict_prefix_is_incomplete() {
        let mut buf = Vec::new();
        encode_request(
            &Request::MultiGet {
                keys: vec![3, 1, 4, 1, 5],
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert_eq!(
                decode_request(&buf[..cut]).unwrap(),
                Decoded::Incomplete,
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            decode_request(&buf),
            Err(ProtocolError::Oversized {
                len: MAX_FRAME_LEN + 1,
                max: MAX_FRAME_LEN,
            })
        );
    }

    #[test]
    fn flipped_bits_fail_the_crc() {
        let mut buf = Vec::new();
        encode_request(&Request::Insert { key: 1, value: 2 }, &mut buf);
        for bit in 0..8 {
            let mut evil = buf.clone();
            let last = evil.len() - 1;
            evil[last] ^= 1 << bit;
            assert!(
                matches!(decode_request(&evil), Err(ProtocolError::BadCrc { .. })),
                "bit {bit}"
            );
        }
    }

    #[test]
    fn unknown_opcodes_and_bad_tags_are_typed_errors() {
        // Hand-build a frame with a bogus opcode but a valid CRC.
        let payload = [0x7Fu8, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        assert_eq!(
            decode_request(&buf),
            Err(ProtocolError::UnknownOpcode(0x7F))
        );

        // A Get whose payload is one byte short of its key: Truncated.
        let payload = [opcode::GET, 1, 2, 3];
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        assert_eq!(decode_request(&buf), Err(ProtocolError::Truncated));

        // A MultiGet whose count promises more keys than the payload holds.
        let mut payload = vec![opcode::MULTI_GET];
        payload.extend_from_slice(&1000u32.to_le_bytes());
        payload.extend_from_slice(&7u64.to_le_bytes());
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        assert_eq!(decode_request(&buf), Err(ProtocolError::Truncated));
    }

    #[test]
    fn record_stream_truncates_exactly_at_the_frame_cap() {
        let mut buf = Vec::new();
        let mut stream = RecordStream::begin(&mut buf);
        // Every record below the cap is accepted, the cap-crossing one is
        // refused and flags truncation — never a mid-frame error.
        for i in 0..MAX_RECORDS_PER_FRAME {
            assert!(stream.push(i as Key, i as Value), "record {i} fits");
        }
        assert!(!stream.push(u64::MAX, 0), "cap-crossing record refused");
        assert_eq!(stream.len(), MAX_RECORDS_PER_FRAME);
        stream.finish();
        // The sealed frame respects the cap and decodes with the
        // truncation reported typed.
        assert!(buf.len() <= HEADER_LEN + MAX_FRAME_LEN);
        match decode_response(&buf).unwrap() {
            Decoded::Frame {
                value: Response::Records { records, truncated },
                consumed,
            } => {
                assert_eq!(consumed, buf.len());
                assert!(truncated);
                assert_eq!(records.len(), MAX_RECORDS_PER_FRAME);
                assert_eq!(records[0], KeyValue { key: 0, value: 0 });
            }
            other => panic!("expected a Records frame, got {other:?}"),
        }
    }

    #[test]
    fn oversized_records_response_encodes_as_truncated_frame() {
        // The materialising encoder is bounded by the same cap: a Vec too
        // large for one frame encodes as a truncated (valid) frame rather
        // than an oversized one.
        let records: Vec<KeyValue> = (0..MAX_RECORDS_PER_FRAME as u64 + 500)
            .map(|i| KeyValue { key: i, value: i })
            .collect();
        let mut buf = Vec::new();
        encode_response(
            &Response::Records {
                records,
                truncated: false,
            },
            &mut buf,
        );
        assert!(buf.len() <= HEADER_LEN + MAX_FRAME_LEN);
        match decode_response(&buf).unwrap() {
            Decoded::Frame {
                value: Response::Records { records, truncated },
                ..
            } => {
                assert!(truncated);
                assert_eq!(records.len(), MAX_RECORDS_PER_FRAME);
            }
            other => panic!("expected a Records frame, got {other:?}"),
        }
    }

    #[test]
    fn bad_truncation_flag_is_a_typed_error() {
        let mut payload = vec![opcode::R_RECORDS, 2];
        payload.extend_from_slice(&0u32.to_le_bytes());
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        assert!(matches!(
            decode_response(&buf),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_garbage_inside_a_frame_is_malformed() {
        let mut payload = vec![opcode::GET];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(0xEE);
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        assert!(matches!(
            decode_request(&buf),
            Err(ProtocolError::Malformed(_))
        ));
    }
}
