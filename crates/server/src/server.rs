//! The thread-per-core TCP front-end.
//!
//! One acceptor thread owns the listening socket and deals new connections
//! round-robin to a fixed set of worker threads; each worker owns its
//! connections outright (no work stealing, no shared queues on the hot
//! path) and pins an RCU [`ReadView`] so point reads touch no atomics at
//! all. The container this grows in is offline — no tokio, no mio — so
//! everything is blocking `std::net`: the acceptor polls a nonblocking
//! listener, and workers multiplex their connections with short read
//! timeouts (see the crate-private `worker` module).
//!
//! [`ReadView`]: csv_concurrent::ReadView

use crate::worker::{worker_loop, WorkerReport};
use csv_common::sync::{AtomicBool, AtomicU64, Mutex, Ordering};
use csv_common::traits::{RangeIndex, RemovableIndex, SnapshotIndex};
use csv_concurrent::{MaintenanceHandle, MaintenanceStats, ShardedIndex};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How the server binds and sizes itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Loopback port to listen on; `0` asks the OS for an ephemeral port
    /// (read it back via [`ServerHandle::local_addr`]) — handy for
    /// in-process tests, while the CLI insists on an explicit port.
    pub port: u16,
    /// Worker threads (thread-per-core: one connection-owning thread per
    /// core you want serving).
    pub workers: usize,
    /// A worker re-pins its [`ReadView`](csv_concurrent::ReadView) after
    /// every write it performs and every `view_refresh` point reads, so a
    /// pinned view can only lag foreign writes by a bounded amount.
    pub view_refresh: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            port: 0,
            workers: 2,
            view_refresh: 1024,
        }
    }
}

/// Counters and control state shared by the acceptor, the workers and the
/// handle. Deliberately non-generic so [`ServerHandle`] stays usable
/// without naming the index type.
pub(crate) struct Shared {
    /// Set once by whichever worker sees a `Shutdown` frame (or by
    /// [`ServerHandle::shutdown`]); everyone drains and exits.
    pub(crate) stop: AtomicBool,
    /// Connections accepted since start.
    pub(crate) connections: AtomicU64,
    /// Operations completed since start (batch entries count once each).
    pub(crate) ops: AtomicU64,
    /// Worker count, echoed in `Stats`.
    pub(crate) workers: usize,
    /// The background maintenance engine, if one runs behind the socket.
    /// Workers peek at health for `Stats`; shutdown takes it to join it.
    pub(crate) engine: Mutex<Option<MaintenanceHandle>>,
    /// `true` when an engine was attached at spawn (stable, unlike the
    /// Option above which empties at shutdown).
    pub(crate) has_engine: bool,
    /// Sticky health bit: starts `true`, cleared if the engine ever
    /// reports unhealthy or panics at shutdown.
    pub(crate) engine_healthy: AtomicBool,
}

impl Shared {
    /// `Stats`-visible health: an attached engine that has recorded a
    /// panic makes this `false`; no engine means nothing can be unhealthy.
    pub(crate) fn engine_is_healthy(&self) -> bool {
        if !self.engine_healthy.load(Ordering::Relaxed) {
            return false;
        }
        match self.engine.lock().as_ref() {
            Some(handle) => handle.is_healthy(),
            None => true,
        }
    }
}

/// What the server counted over its lifetime, returned by
/// [`ServerHandle::join`]/[`ServerHandle::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// Connections accepted.
    pub connections: u64,
    /// Operations served (batch entries count once each).
    pub ops: u64,
    /// Connections closed because they sent malformed frames.
    pub protocol_errors: u64,
    /// Final stats of the maintenance engine, when one was attached and
    /// shut down cleanly.
    pub engine_stats: Option<MaintenanceStats>,
    /// `false` when an attached engine panicked at any point.
    pub engine_healthy: bool,
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`join`](Self::join) to wait for a client-initiated `Shutdown` or
/// [`shutdown`](Self::shutdown) to stop it from this side.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<WorkerReport>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// `true` once the server has begun stopping (a `Shutdown` frame
    /// arrived or [`shutdown`](Self::shutdown) was called).
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Waits until the server stops — normally because a client sent the
    /// `Shutdown` operation — then joins every thread and reports.
    pub fn join(self) -> ServerReport {
        let Self {
            shared,
            acceptor,
            workers,
            ..
        } = self;
        let mut report = ServerReport {
            engine_healthy: true,
            ..ServerReport::default()
        };
        for worker in workers {
            match worker.join() {
                Ok(w) => report.protocol_errors += w.protocol_errors,
                Err(_) => report.engine_healthy = false,
            }
        }
        // The acceptor exits once `stop` is set; workers only exit after
        // setting it (or after their channel died), so joining them first
        // is safe.
        acceptor.join().ok();
        report.connections = shared.connections.load(Ordering::Relaxed);
        report.ops = shared.ops.load(Ordering::Relaxed);
        if let Some(engine) = shared.engine.lock().take() {
            match engine.shutdown() {
                Ok(stats) => report.engine_stats = Some(stats),
                Err(_panic) => report.engine_healthy = false,
            }
        }
        if !shared.engine_healthy.load(Ordering::Relaxed) {
            report.engine_healthy = false;
        }
        report
    }

    /// Stops the server from the handle side and joins everything.
    pub fn shutdown(self) -> ServerReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.join()
    }
}

/// Binds `127.0.0.1:port` and spawns the acceptor plus `config.workers`
/// worker threads over the shared index. The optional maintenance engine
/// handle is surfaced through `Stats` and joined at shutdown.
pub fn spawn<I>(
    index: Arc<ShardedIndex<I>>,
    engine: Option<MaintenanceHandle>,
    config: ServerConfig,
) -> io::Result<ServerHandle>
where
    I: SnapshotIndex + RangeIndex + RemovableIndex + 'static,
{
    let workers = config.workers.max(1);
    let listener = TcpListener::bind(("127.0.0.1", config.port))?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        ops: AtomicU64::new(0),
        workers,
        has_engine: engine.is_some(),
        engine: Mutex::new(engine),
        engine_healthy: AtomicBool::new(true),
    });

    let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers);
    let mut worker_handles = Vec::with_capacity(workers);
    for id in 0..workers {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        senders.push(tx);
        let shared = Arc::clone(&shared);
        let index = Arc::clone(&index);
        let view_refresh = config.view_refresh.max(1);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("csv-serve-{id}"))
                .spawn(move || worker_loop(index, shared, rx, view_refresh))
                .expect("spawning a worker thread"),
        );
    }

    let acceptor_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("csv-accept".into())
        .spawn(move || {
            let mut next = 0usize;
            while !acceptor_shared.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        acceptor_shared.connections.fetch_add(1, Ordering::Relaxed);
                        // Round-robin deal; a worker whose channel died has
                        // already panicked, and join() will surface that.
                        if senders[next % senders.len()].send(stream).is_err() {
                            break;
                        }
                        next = next.wrapping_add(1);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            // Dropping the senders lets idle workers notice the end.
        })
        .expect("spawning the acceptor thread");

    Ok(ServerHandle {
        local_addr,
        shared,
        acceptor,
        workers: worker_handles,
    })
}
