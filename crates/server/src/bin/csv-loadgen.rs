//! `csv-loadgen` — drive YCSB-style load against a running `csv-index
//! --serve` instance and report throughput plus p50/p99/p99.9 latency.

#![forbid(unsafe_code)]

use csv_server::{run_loadgen, LoadgenConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let config = match LoadgenConfig::parse(&raw) {
        Ok(config) => config,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    match run_loadgen(&config) {
        Ok(report) => {
            print!("{}", report.render());
            if report.completed == 0 {
                eprintln!("error: no operations completed");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
