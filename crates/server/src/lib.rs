//! A thread-per-core TCP serving front-end over the sharded learned index.
//!
//! The paper measures its smoothed indexes in-process; the north star here
//! is a system serving heavy traffic over a network. This crate adds the
//! missing layer: a blocking `std::net` server (the build environment is
//! offline — no async runtime) with one acceptor dealing connections to
//! per-core workers, a length-prefixed CRC-checked binary protocol, and a
//! load generator reporting tail latency.
//!
//! The design leans on the concurrency work of earlier PRs:
//!
//! - each worker pins an RCU [`ReadView`](csv_concurrent::ReadView), so a
//!   point read served over the wire costs the same zero-atomics lookup
//!   the in-process benches measured;
//! - `MultiGet` frames resolve through
//!   [`ShardedIndex::multi_get`](csv_concurrent::ShardedIndex::multi_get)
//!   — route the whole batch through the shard layout first, then resolve
//!   shard by shard (the classic learned-index batching trick);
//! - writes route through the same durable/RCU write path the WAL work
//!   hardened, and the background
//!   [`MaintenanceEngine`](csv_concurrent::MaintenanceEngine) can run
//!   behind the socket, surfacing its health through the `Stats` op.
//!
//! Entry points: [`spawn`] starts a server over an index you built;
//! [`Client`] is the blocking reference client; [`run_loadgen`] drives a
//! YCSB-style measurement run. `csv-index --serve` and `csv-loadgen` wrap
//! these for the command line.

#![forbid(unsafe_code)]

pub mod client;
pub mod codec;
pub mod errors;
pub mod loadgen;
pub mod protocol;
pub mod server;
mod worker;

pub use client::{Client, RangeScan};
pub use codec::{
    decode_request, decode_response, encode_request, encode_response, Decoded, RecordStream,
    MAX_RECORDS_PER_FRAME,
};
pub use errors::{ArgError, ClientError, ProtocolError};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport, MixChoice};
pub use protocol::{Request, Response, ServerStats, WriteOp, MAX_FRAME_LEN};
pub use server::{spawn, ServerConfig, ServerHandle, ServerReport};
