//! Machine-independent cost counters and small statistics helpers used by the
//! experiment harness.
//!
//! Absolute nanosecond latencies cannot be matched across hardware, so every
//! index also charges its traversal and search work to [`CostCounters`]; the
//! harness reports both wall-clock times and these counters.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters charged during a (counted) lookup or insert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostCounters {
    /// Number of index nodes visited (traversal length).
    pub nodes_visited: usize,
    /// Number of key comparisons / slot probes during leaf-node search.
    pub comparisons: usize,
    /// Number of model evaluations.
    pub model_evals: usize,
    /// Number of elements shifted (inserts into gapped arrays / leaves).
    pub shifts: usize,
}

impl CostCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Adds another counter set to this one.
    pub fn add(&mut self, other: &CostCounters) {
        self.nodes_visited += other.nodes_visited;
        self.comparisons += other.comparisons;
        self.model_evals += other.model_evals;
        self.shifts += other.shifts;
    }

    /// A single scalar "abstract cost": one unit per node visited plus one
    /// per comparison. Used when the harness needs to rank configurations in
    /// a hardware-independent way.
    pub fn abstract_cost(&self) -> usize {
        self.nodes_visited + self.comparisons
    }
}

/// Aggregate summary (mean / min / max / percentiles) of a sample set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarises a sample slice. Returns the default (all zeros) for an
    /// empty slice.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            sorted[idx.min(count - 1)]
        };
        Self {
            count,
            mean: sum / count as f64,
            min: sorted[0],
            max: sorted[count - 1],
            p50: pct(0.50),
            p99: pct(0.99),
        }
    }

    /// Summarises a duration slice in nanoseconds.
    pub fn of_durations(samples: &[Duration]) -> Self {
        let ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
        Self::of(&ns)
    }
}

/// Relative change `(new - old) / old` in percent; 0 when `old` is 0.
pub fn percent_change(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

/// Relative improvement `(old - new) / old` in percent (positive = faster).
pub fn percent_improvement(old: f64, new: f64) -> f64 {
    -percent_change(old, new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let mut a = CostCounters::new();
        a.nodes_visited = 2;
        a.comparisons = 5;
        let mut b = CostCounters::new();
        b.nodes_visited = 1;
        b.model_evals = 3;
        b.shifts = 4;
        a.add(&b);
        assert_eq!(a.nodes_visited, 3);
        assert_eq!(a.comparisons, 5);
        assert_eq!(a.model_evals, 3);
        assert_eq!(a.shifts, 4);
        assert_eq!(a.abstract_cost(), 8);
        a.reset();
        assert_eq!(a, CostCounters::default());
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.p50 >= 49.0 && s.p50 <= 52.0);
        assert!(s.p99 >= 98.0);
    }

    #[test]
    fn summary_of_durations_converts_to_ns() {
        let s = Summary::of_durations(&[Duration::from_nanos(100), Duration::from_nanos(300)]);
        assert_eq!(s.count, 2);
        assert!((s.mean - 200.0).abs() < 1e-9);
    }

    #[test]
    fn percent_helpers() {
        assert!((percent_change(100.0, 110.0) - 10.0).abs() < 1e-12);
        assert!((percent_improvement(100.0, 66.0) - 34.0).abs() < 1e-12);
        assert_eq!(percent_change(0.0, 5.0), 0.0);
    }
}
