//! Optimal ε-bounded piecewise linear approximation (PLA).
//!
//! Given a sorted key sequence and an error bound ε, the builder produces the
//! minimum number of linear segments such that every key's predicted position
//! is within ε of its true rank. This is the classic streaming construction
//! used by the PGM index (maintaining the cone of feasible slopes) and reused
//! by SALI's hot sub-tree flattening.

use crate::key::Key;
use crate::linear::LinearModel;
use serde::{Deserialize, Serialize};

/// A linear segment covering keys in `[first_key, last_key]` whose positions
/// start at `first_pos`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Smallest key covered by the segment.
    pub first_key: Key,
    /// Largest key covered by the segment.
    pub last_key: Key,
    /// Rank (within the full key set) of `first_key`.
    pub first_pos: usize,
    /// Number of keys covered.
    pub len: usize,
    /// The segment's indexing function, mapping a key to an absolute rank.
    pub model: LinearModel,
}

impl Segment {
    /// Predicts the absolute rank of `key`, clamped to the segment's range.
    pub fn predict(&self, key: Key) -> usize {
        let p = self.model.predict_f64(key);
        let lo = self.first_pos as f64;
        let hi = (self.first_pos + self.len.saturating_sub(1)) as f64;
        p.clamp(lo, hi).round() as usize
    }
}

/// Streaming builder for an ε-bounded segmentation.
///
/// The construction keeps the feasible slope cone `[slope_lo, slope_hi]` for
/// the current segment; a key that empties the cone closes the segment and
/// starts a new one. The resulting segmentation is within a factor of two of
/// the optimum and in practice matches the PGM construction's behaviour.
#[derive(Debug, Clone)]
pub struct SegmentationBuilder {
    epsilon: f64,
}

impl SegmentationBuilder {
    /// Creates a builder with error bound `epsilon ≥ 1`.
    pub fn new(epsilon: usize) -> Self {
        Self {
            epsilon: epsilon.max(1) as f64,
        }
    }

    /// The configured error bound.
    pub fn epsilon(&self) -> usize {
        self.epsilon as usize
    }

    /// Builds the segmentation of a strictly increasing key slice.
    pub fn build(&self, keys: &[Key]) -> Vec<Segment> {
        let n = keys.len();
        if n == 0 {
            return Vec::new();
        }
        let mut segments = Vec::new();
        let mut start = 0usize;
        let mut slope_lo = f64::NEG_INFINITY;
        let mut slope_hi = f64::INFINITY;
        let mut i = 1usize;
        while i < n {
            let dx = (keys[i] - keys[start]) as f64;
            let dy = (i - start) as f64;
            // Feasible slopes must keep |model(keys[i]) - i| <= epsilon when
            // anchored at (keys[start], start).
            let lo = (dy - self.epsilon) / dx;
            let hi = (dy + self.epsilon) / dx;
            let new_lo = slope_lo.max(lo);
            let new_hi = slope_hi.min(hi);
            if new_lo > new_hi {
                segments.push(self.close_segment(keys, start, i));
                start = i;
                slope_lo = f64::NEG_INFINITY;
                slope_hi = f64::INFINITY;
            } else {
                slope_lo = new_lo;
                slope_hi = new_hi;
            }
            i += 1;
        }
        segments.push(self.close_segment(keys, start, n));
        segments
    }

    fn close_segment(&self, keys: &[Key], start: usize, end: usize) -> Segment {
        let len = end - start;
        let seg_keys = &keys[start..end];
        let model = if len == 1 {
            LinearModel::new(0.0, start as f64)
        } else {
            // Fit on absolute positions so predictions are absolute ranks.
            let positions: Vec<f64> = (start..end).map(|p| p as f64).collect();
            LinearModel::fit_points(seg_keys, &positions)
        };
        Segment {
            first_key: seg_keys[0],
            last_key: seg_keys[len - 1],
            first_pos: start,
            len,
            model,
        }
    }
}

/// Verifies that a segmentation respects the error bound `epsilon` for every
/// key of the original slice; returns the maximum observed error.
pub fn max_segmentation_error(keys: &[Key], segments: &[Segment]) -> f64 {
    let mut max_err: f64 = 0.0;
    for seg in segments {
        for offset in 0..seg.len {
            let pos = seg.first_pos + offset;
            let key = keys[pos];
            let err = (seg.model.predict_f64(key) - pos as f64).abs();
            max_err = max_err.max(err);
        }
    }
    max_err
}

/// Locates the segment responsible for `key` via binary search on
/// `first_key`; returns the last segment whose `first_key <= key` (or the
/// first segment for keys below the minimum).
pub fn locate_segment(segments: &[Segment], key: Key) -> &Segment {
    debug_assert!(!segments.is_empty());
    let idx = segments.partition_point(|s| s.first_key <= key);
    if idx == 0 {
        &segments[0]
    } else {
        &segments[idx - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_data_needs_one_segment() {
        let keys: Vec<Key> = (0..1000).map(|i| 5 + i * 7).collect();
        let segs = SegmentationBuilder::new(4).build(&keys);
        assert_eq!(segs.len(), 1);
        assert!(max_segmentation_error(&keys, &segs) <= 4.0 + 1e-9);
        assert_eq!(segs[0].len, 1000);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let segs = SegmentationBuilder::new(8).build(&[]);
        assert!(segs.is_empty());
        let segs = SegmentationBuilder::new(8).build(&[42]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].predict(42), 0);
    }

    #[test]
    fn piecewise_data_splits_and_respects_epsilon() {
        // Two very different densities force at least two segments for a
        // small epsilon.
        let mut keys: Vec<Key> = (0..500).collect();
        keys.extend((0..500).map(|i| 1_000_000 + i * 1000));
        for &eps in &[1usize, 4, 16, 64] {
            let segs = SegmentationBuilder::new(eps).build(&keys);
            assert!(
                max_segmentation_error(&keys, &segs) <= eps as f64 + 1e-9,
                "eps {eps} violated"
            );
            // Coverage must be exact and contiguous.
            let total: usize = segs.iter().map(|s| s.len).sum();
            assert_eq!(total, keys.len());
            let mut pos = 0;
            for s in &segs {
                assert_eq!(s.first_pos, pos);
                pos += s.len;
            }
        }
    }

    #[test]
    fn smaller_epsilon_never_needs_fewer_segments() {
        let keys: Vec<Key> = (0..2000u64)
            .map(|i| i * i % 100_000 + i * 37)
            .map(|k| k as Key)
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let tight = SegmentationBuilder::new(2).build(&sorted).len();
        let loose = SegmentationBuilder::new(128).build(&sorted).len();
        assert!(tight >= loose);
    }

    #[test]
    fn locate_segment_finds_covering_segment() {
        let mut keys: Vec<Key> = (0..100).collect();
        keys.extend((0..100).map(|i| 10_000 + i * 50));
        let segs = SegmentationBuilder::new(2).build(&keys);
        assert!(segs.len() >= 2);
        for (pos, &k) in keys.iter().enumerate() {
            let seg = locate_segment(&segs, k);
            assert!(seg.first_key <= k && k <= seg.last_key);
            let predicted = seg.predict(k);
            assert!((predicted as i64 - pos as i64).abs() <= 2 + 1);
        }
        // Keys outside the covered range clamp to the boundary segments.
        let below = locate_segment(&segs, 0);
        assert_eq!(below.first_pos, 0);
    }
}
