//! Index abstractions shared by every index implementation in the workspace.
//!
//! The experiment harness (crates/bench) drives ALEX, LIPP, SALI, PGM and the
//! B+-tree through the [`LearnedIndex`] trait so that every figure/table of
//! the paper can be regenerated with the same driver code, and gathers the
//! structural statistics the paper reports through [`IndexStats`].

use crate::key::{Key, KeyValue, Value};
use crate::metrics::CostCounters;
use core::ops::ControlFlow;
use serde::{Deserialize, Serialize};

/// Histogram of how many keys live at each level of a hierarchical index
/// (level 1 = root, as in Fig. 1 of the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelHistogram {
    counts: Vec<usize>,
}

impl LevelHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` keys at 1-based `level`.
    pub fn record(&mut self, level: usize, count: usize) {
        assert!(level >= 1, "levels are 1-based");
        if self.counts.len() < level {
            self.counts.resize(level, 0);
        }
        self.counts[level - 1] += count;
    }

    /// Number of keys recorded at 1-based `level`.
    pub fn at(&self, level: usize) -> usize {
        if level == 0 || level > self.counts.len() {
            0
        } else {
            self.counts[level - 1]
        }
    }

    /// The deepest level with at least one key (0 when empty).
    pub fn max_level(&self) -> usize {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1)
    }

    /// Total number of keys recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Number of keys at `level` or deeper. The paper calls keys at level 3
    /// or below "promotable".
    pub fn at_or_below(&self, level: usize) -> usize {
        if level == 0 {
            return self.total();
        }
        self.counts.iter().skip(level - 1).sum()
    }

    /// Iterates `(level, count)` pairs for non-empty levels.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i + 1, c))
    }
}

/// Structural statistics reported by an index, matching the metrics used in
/// the paper's evaluation (§6.1): level distribution, node counts, and size.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IndexStats {
    /// Keys per level (level 1 = root node).
    pub level_histogram: LevelHistogram,
    /// Total number of nodes (internal + leaf / data nodes).
    pub node_count: usize,
    /// Number of nodes at level 3 or deeper (the pool that CSV can remove).
    pub deep_node_count: usize,
    /// Height of the index (number of levels).
    pub height: usize,
    /// Estimated in-memory size in bytes (models + slot arrays + metadata).
    pub size_bytes: usize,
    /// Number of stored (real) keys.
    pub num_keys: usize,
}

impl IndexStats {
    /// Fraction of keys at level 3 or deeper — the "promotable" pool.
    pub fn promotable_keys(&self) -> usize {
        self.level_histogram.at_or_below(3)
    }

    /// Average (1-based) level of a key, i.e. the expected traversal depth.
    pub fn mean_key_level(&self) -> f64 {
        let total = self.level_histogram.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: usize = self.level_histogram.iter().map(|(l, c)| l * c).sum();
        weighted as f64 / total as f64
    }
}

/// The common interface every index in the workspace implements.
///
/// All indexes are keyed by [`Key`] and store a [`Value`]; bulk loading takes
/// a strictly increasing key/value sequence (the normalisation applied to all
/// datasets, mirroring the paper's de-duplication step).
pub trait LearnedIndex {
    /// Human-readable name used in experiment output (e.g. `"LIPP"`).
    fn name(&self) -> &'static str;

    /// Builds the index over a sorted, de-duplicated record slice.
    fn bulk_load(records: &[KeyValue]) -> Self
    where
        Self: Sized;

    /// Point lookup.
    fn get(&self, key: Key) -> Option<Value>;

    /// Point lookup that also charges traversal/search costs to `counters`,
    /// used for the machine-independent measurements.
    fn get_counted(&self, key: Key, counters: &mut CostCounters) -> Option<Value>;

    /// Inserts (or overwrites) a record. Returns `true` when the key was new.
    fn insert(&mut self, key: Key, value: Value) -> bool;

    /// Number of stored (real) keys.
    fn len(&self) -> usize;

    /// `true` when no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural statistics (levels, node counts, size) for the evaluation.
    fn stats(&self) -> IndexStats;

    /// The 1-based level at which `key` is stored, when present. Used to
    /// compute the paper's "promoted data" metric.
    fn level_of_key(&self, key: Key) -> Option<usize>;

    /// Hints the CPU caches about where `key` would be found, without
    /// resolving the lookup. Batched readers call this for a whole slice of
    /// keys before resolving any of them, so the resolve loop overlaps its
    /// cache misses (software pipelining). Purely advisory — the default
    /// does nothing, and implementations must not change observable state.
    fn prefetch_key(&self, key: Key) {
        let _ = key;
    }
}

/// Range scans over an index.
///
/// The paper's evaluation only measures point lookups and inserts, but every
/// index it integrates with (ALEX, LIPP, SALI) supports range queries in its
/// original implementation, and a downstream user of this crate will expect
/// them; the integration tests verify all implementations against a
/// `BTreeMap` oracle.
pub trait RangeIndex: LearnedIndex {
    /// Returns every record with `lo <= key <= hi`, in ascending key order.
    fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue>;

    /// Streams every record with `lo <= key <= hi` to `f` in ascending key
    /// order, without materialising an intermediate `Vec`.
    ///
    /// Returns [`ControlFlow::Break`] **iff `f` broke** (early termination,
    /// e.g. a `limit` was reached mid-scan); exhausting the range naturally
    /// returns [`ControlFlow::Continue`]. The default implementation walks
    /// the materialised [`RangeIndex::range`] result; native implementations
    /// override it to walk their nodes allocation-free and to stop
    /// descending as soon as `f` breaks.
    fn range_visit(
        &self,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        for rec in self.range(lo, hi) {
            f(rec.key, rec.value)?;
        }
        ControlFlow::Continue(())
    }

    /// Number of records with `lo <= key <= hi`.
    fn count_range(&self, lo: Key, hi: Key) -> usize {
        self.range(lo, hi).len()
    }
}

/// Collects a [`RangeIndex::range_visit`] stream into a `Vec`, optionally
/// stopping after `limit` records (`limit == 0` means unlimited). Shared by
/// the `range ≡ collected range_visit` equivalence tests at every layer.
pub fn collect_range_visit<I: RangeIndex + ?Sized>(
    index: &I,
    lo: Key,
    hi: Key,
    limit: usize,
) -> Vec<KeyValue> {
    let mut out = Vec::new();
    let _ = index.range_visit(lo, hi, &mut |key, value| {
        out.push(KeyValue { key, value });
        if limit != 0 && out.len() >= limit {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    out
}

/// Point deletions from an index.
pub trait RemovableIndex: LearnedIndex {
    /// Removes `key` and returns its value when it was present.
    fn remove(&mut self, key: Key) -> Option<Value>;
}

/// An index that can serve as an immutable RCU snapshot.
///
/// The concurrent layer's lock-free read path publishes whole per-shard
/// indexes behind an atomic pointer: readers dereference the published
/// snapshot without locks, and writers/maintenance build a *successor* off
/// to the side — starting from a [`Clone`] of the live snapshot — and swap
/// it in. That only works when:
///
/// * cloning is a **pure deep copy**: the clone shares no interior
///   mutability with the original, so mutating it never perturbs readers
///   of the live snapshot (a `derive(Clone)` over `Vec`-based node arenas
///   satisfies this; an index holding `Rc`/`Arc`-shared nodes or interior
///   `Cell`s would not), and
/// * the clone's cost is **O(data)** with a small constant — a handful of
///   `memcpy`s over the node arenas — because maintenance pays it on every
///   copy-on-write publication.
///
/// This is a marker trait: implementations assert the two properties above
/// for their concrete layout rather than getting them from a blanket impl,
/// which is also where each index documents what its clone actually copies.
pub trait SnapshotIndex: LearnedIndex + Clone + Send + Sync {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_histogram_accounting() {
        let mut h = LevelHistogram::new();
        h.record(1, 10);
        h.record(2, 20);
        h.record(4, 5);
        assert_eq!(h.at(1), 10);
        assert_eq!(h.at(3), 0);
        assert_eq!(h.at(4), 5);
        assert_eq!(h.max_level(), 4);
        assert_eq!(h.total(), 35);
        assert_eq!(h.at_or_below(3), 5);
        assert_eq!(h.at_or_below(1), 35);
        assert_eq!(h.at_or_below(0), 35);
        let levels: Vec<_> = h.iter().collect();
        assert_eq!(levels, vec![(1, 10), (2, 20), (4, 5)]);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn level_zero_rejected() {
        LevelHistogram::new().record(0, 1);
    }

    #[test]
    fn stats_mean_level_and_promotable() {
        let mut stats = IndexStats::default();
        stats.level_histogram.record(1, 2);
        stats.level_histogram.record(3, 2);
        assert_eq!(stats.promotable_keys(), 2);
        assert!((stats.mean_key_level() - 2.0).abs() < 1e-12);
        let empty = IndexStats::default();
        assert_eq!(empty.mean_key_level(), 0.0);
    }
}
