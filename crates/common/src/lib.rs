//! Shared building blocks for the CSV (CDF Smoothing via Virtual points)
//! learned-index reproduction.
//!
//! This crate contains everything that more than one of the higher-level
//! crates needs:
//!
//! * [`key`] — the key/value types used throughout the workspace,
//! * [`linear`] — ordinary-least-squares linear models mapping keys to ranks,
//! * [`pla`] — optimal ε-bounded piecewise linear approximation (used by the
//!   PGM baseline and by SALI's hot sub-tree flattening),
//! * [`search`] — bounded binary and exponential search with cost counters,
//! * [`fenwick`] — a Fenwick (binary indexed) tree used for incremental
//!   suffix-sum maintenance during CDF smoothing,
//! * [`traits`] — the [`traits::LearnedIndex`] abstraction plus the
//!   structural statistics every index reports ([`traits::IndexStats`]),
//! * [`metrics`] — machine-independent cost counters and simple timing /
//!   aggregation helpers used by the experiment harness,
//! * [`latency`] — a log-bucketed latency histogram for tail-latency
//!   reporting,
//! * [`quadratic`] — quadratic indexing functions used by the smoothing
//!   extension to richer model classes,
//! * [`rng`] — tiny deterministic RNG primitives (SplitMix64 / xorshift) so
//!   dataset generation and property tests are reproducible,
//! * [`sync`] — the workspace's synchronization shims: `std`/`parking_lot`
//!   re-exports normally, instrumented model-checkable versions under the
//!   `check` feature (driven by the `csv_check` controlled scheduler).

#![deny(unsafe_code)]

pub mod fenwick;
pub mod key;
pub mod latency;
pub mod linear;
pub mod metrics;
pub mod pla;
// The audited unsafe exception: the prefetch intrinsic (hint-only, cannot
// fault). `cargo xtask lint` enforces the allowlist.
#[allow(unsafe_code)]
pub mod prefetch;
pub mod quadratic;
pub mod rng;
pub mod search;
pub mod sync;
pub mod traits;

pub use fenwick::Fenwick;
pub use key::{Key, KeyValue, Value};
pub use latency::LatencyHistogram;
pub use linear::LinearModel;
pub use metrics::{CostCounters, Summary};
pub use pla::{Segment, SegmentationBuilder};
pub use prefetch::{prefetch_read, prefetch_slice_at};
pub use quadratic::{QuadFitStats, QuadraticModel};
pub use search::{binary_search_bounded, exponential_search, SearchOutcome};
pub use traits::{
    collect_range_visit, IndexStats, LearnedIndex, LevelHistogram, RangeIndex, RemovableIndex,
};
