//! Key and value types used throughout the workspace.
//!
//! The paper (§3) assumes one-dimensional integer index keys; real-valued
//! keys are assumed to be scaled to integers. We therefore fix [`Key`] to
//! `u64`, which matches the SOSD-style datasets (Facebook IDs, tweet IDs,
//! S2 cell IDs, genome loci) used in the evaluation.

use serde::{Deserialize, Serialize};

/// A search key. All datasets in the paper's evaluation are 64-bit unsigned
/// integers after de-duplication.
pub type Key = u64;

/// The payload associated with a key. The evaluation only measures lookup
/// and insert performance, so a fixed-width payload is sufficient.
pub type Value = u64;

/// A `(key, value)` record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeyValue {
    /// The search key.
    pub key: Key,
    /// The payload stored for the key.
    pub value: Value,
}

impl KeyValue {
    /// Creates a record.
    #[inline]
    pub fn new(key: Key, value: Value) -> Self {
        Self { key, value }
    }

    /// Creates a record whose value is derived from the key (the convention
    /// used by the examples, tests and benchmarks: `value = key`).
    #[inline]
    pub fn identity(key: Key) -> Self {
        Self { key, value: key }
    }
}

impl From<(Key, Value)> for KeyValue {
    #[inline]
    fn from((key, value): (Key, Value)) -> Self {
        Self { key, value }
    }
}

/// Turns a sorted, de-duplicated key slice into identity records.
pub fn identity_records(keys: &[Key]) -> Vec<KeyValue> {
    keys.iter().copied().map(KeyValue::identity).collect()
}

/// Sorts and de-duplicates a key vector in place.
///
/// The paper removes duplicates from every dataset because LIPP and SALI
/// require unique keys; we apply the same normalisation everywhere.
pub fn normalize_keys(keys: &mut Vec<Key>) {
    keys.sort_unstable();
    keys.dedup();
}

/// Returns `true` when the slice is strictly increasing (sorted and unique).
pub fn is_strictly_increasing(keys: &[Key]) -> bool {
    keys.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_value_constructors() {
        let kv = KeyValue::new(42, 7);
        assert_eq!(kv.key, 42);
        assert_eq!(kv.value, 7);
        let kv = KeyValue::identity(13);
        assert_eq!(kv.key, kv.value);
        let kv: KeyValue = (1u64, 2u64).into();
        assert_eq!(kv, KeyValue::new(1, 2));
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut keys = vec![5, 3, 5, 1, 3, 9];
        normalize_keys(&mut keys);
        assert_eq!(keys, vec![1, 3, 5, 9]);
        assert!(is_strictly_increasing(&keys));
    }

    #[test]
    fn strictly_increasing_detects_duplicates() {
        assert!(is_strictly_increasing(&[]));
        assert!(is_strictly_increasing(&[7]));
        assert!(is_strictly_increasing(&[1, 2, 3]));
        assert!(!is_strictly_increasing(&[1, 1, 2]));
        assert!(!is_strictly_increasing(&[3, 2]));
    }

    #[test]
    fn identity_records_match_keys() {
        let recs = identity_records(&[1, 4, 9]);
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|r| r.key == r.value));
        assert_eq!(recs[2].key, 9);
    }
}
