//! Best-effort cache prefetch hints.
//!
//! The batched read path predicts where a whole slice of keys will land
//! before resolving any of them, then issues prefetches for the predicted
//! slots so the resolve loop overlaps its cache misses instead of paying
//! them serially. On non-x86 targets the hint compiles to nothing — the
//! code stays correct, it just loses the overlap.

/// Hints the CPU to pull the cache line containing `ptr` into all cache
/// levels. Purely advisory: never faults, even on dangling or null
/// pointers, so callers may pass addresses derived from unvalidated
/// predictions.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is a hint instruction; it cannot fault regardless
    // of the address's validity.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// Prefetches the cache line holding `slice[idx]`, when in bounds.
#[inline(always)]
pub fn prefetch_slice_at<T>(slice: &[T], idx: usize) {
    if let Some(elem) = slice.get(idx) {
        prefetch_read(elem as *const T);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_never_faults() {
        let data = [1u64, 2, 3];
        prefetch_read(&data[0] as *const u64);
        prefetch_read(core::ptr::null::<u64>());
        prefetch_slice_at(&data, 1);
        prefetch_slice_at(&data, 99); // out of bounds: silently ignored
    }
}
