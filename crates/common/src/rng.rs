//! Tiny deterministic random number primitives.
//!
//! Dataset generation and the experiment harness must be reproducible across
//! runs and machines, so they are seeded through these primitives rather than
//! through OS entropy. (The `rand` crate is still used where distributions
//! are convenient; it is seeded from [`SplitMix64`] output.)

/// SplitMix64: a tiny, high-quality 64-bit generator, mainly used to derive
/// independent seeds from a single user-provided seed.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Modulo bias is negligible for the bounds used here (<< 2^64).
            self.next_u64() % bound
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }
}

/// Xorshift64*: slightly faster generator used in hot loops (query sampling).
#[derive(Debug, Clone, Copy)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a non-zero seed (zero seeds are remapped).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..1000 {
            let v = rng.next_in_range(10, 20);
            assert!((10..=20).contains(&v));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert_eq!(rng.next_below(0), 0);
        }
    }

    #[test]
    fn xorshift_zero_seed_is_remapped() {
        let mut rng = XorShift64::new(0);
        let v1 = rng.next_u64();
        let v2 = rng.next_u64();
        assert_ne!(v1, 0);
        assert_ne!(v1, v2);
        assert!((0.0..1.0).contains(&rng.next_f64()));
        assert_eq!(rng.next_below(0), 0);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SplitMix64::new(123);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[(rng.next_f64() * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 700 && b < 1300, "bucket {b} far from uniform");
        }
    }
}
