//! Fenwick (binary indexed) tree over `f64` values.
//!
//! The CDF-smoothing algorithm needs, for every candidate virtual point, the
//! sum of the keys whose rank is at least the candidate's insertion rank
//! (Eq. 14 of the paper). Maintaining the key layout in a Fenwick tree turns
//! that suffix sum into an O(log n) query and keeps it cheap to update as
//! virtual points are inserted one by one.

/// A Fenwick tree supporting point updates and prefix/suffix sums over `f64`.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<f64>,
    len: usize,
    total: f64,
}

impl Fenwick {
    /// Creates an empty tree with capacity for `len` positions (0-indexed).
    pub fn new(len: usize) -> Self {
        Self {
            tree: vec![0.0; len + 1],
            len,
            total: 0.0,
        }
    }

    /// Builds a tree whose position `i` initially holds `values[i]`.
    pub fn from_values(values: &[f64]) -> Self {
        let mut fw = Self::new(values.len());
        for (i, &v) in values.iter().enumerate() {
            fw.add(i, v);
        }
        fw
    }

    /// Number of addressable positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree has no addressable positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum over every position.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Adds `delta` at position `i`.
    pub fn add(&mut self, i: usize, delta: f64) {
        assert!(
            i < self.len,
            "fenwick index {i} out of bounds ({})",
            self.len
        );
        self.total += delta;
        let mut i = i + 1;
        while i <= self.len {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (inclusive prefix sum). `prefix(len-1)` is
    /// the total.
    pub fn prefix(&self, i: usize) -> f64 {
        let mut i = (i + 1).min(self.len);
        let mut acc = 0.0;
        while i > 0 {
            acc += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        acc
    }

    /// Sum of positions `from..len` (suffix sum starting at `from`).
    pub fn suffix(&self, from: usize) -> f64 {
        if from == 0 {
            self.total
        } else if from >= self.len {
            0.0
        } else {
            self.total - self.prefix(from - 1)
        }
    }

    /// Sum over the half-open range `lo..hi`.
    pub fn range(&self, lo: usize, hi: usize) -> f64 {
        if lo >= hi {
            return 0.0;
        }
        let upper = self.prefix(hi - 1);
        if lo == 0 {
            upper
        } else {
            upper - self.prefix(lo - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn prefix_and_suffix_sums() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let fw = Fenwick::from_values(&values);
        assert!(close(fw.total(), 15.0));
        assert!(close(fw.prefix(0), 1.0));
        assert!(close(fw.prefix(2), 6.0));
        assert!(close(fw.prefix(4), 15.0));
        assert!(close(fw.suffix(0), 15.0));
        assert!(close(fw.suffix(3), 9.0));
        assert!(close(fw.suffix(5), 0.0));
        assert!(close(fw.range(1, 4), 9.0));
        assert!(close(fw.range(2, 2), 0.0));
    }

    #[test]
    fn updates_are_reflected() {
        let mut fw = Fenwick::new(4);
        assert!(!fw.is_empty());
        assert_eq!(fw.len(), 4);
        fw.add(0, 10.0);
        fw.add(3, 5.0);
        assert!(close(fw.prefix(3), 15.0));
        fw.add(3, -5.0);
        assert!(close(fw.suffix(1), 0.0));
        assert!(close(fw.total(), 10.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_add_panics() {
        let mut fw = Fenwick::new(2);
        fw.add(2, 1.0);
    }

    #[test]
    fn matches_naive_sums_on_random_data() {
        // Small deterministic pseudo-random exercise.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64
        };
        let values: Vec<f64> = (0..257).map(|_| next()).collect();
        let fw = Fenwick::from_values(&values);
        for i in (0..values.len()).step_by(17) {
            let naive: f64 = values[..=i].iter().sum();
            assert!(close(fw.prefix(i), naive));
            let naive_s: f64 = values[i..].iter().sum();
            assert!(close(fw.suffix(i), naive_s));
        }
    }
}
