//! Log-bucketed latency histogram.
//!
//! The paper reports mean per-query latencies; production index evaluations
//! (and the read-write experiments here) also need tail behaviour. This is a
//! small HdrHistogram-style recorder: nanosecond samples land in
//! logarithmically spaced buckets (fixed memory, no per-sample allocation),
//! and percentiles are interpolated from the bucket boundaries. It is used by
//! the experiment harness and the mixed-workload example; [`Summary`]
//! (exact, but O(n log n) memory/time) remains available for small sample
//! sets.
//!
//! [`Summary`]: crate::metrics::Summary

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Number of buckets per power of two (higher = finer resolution).
const SUB_BUCKETS: usize = 16;
/// log2 of [`SUB_BUCKETS`].
const LOG_SUB: usize = 4;
/// Number of powers of two covered (2^0 .. 2^63 nanoseconds).
const POWERS: usize = 64;
/// Total number of reachable buckets.
const NUM_BUCKETS: usize = (POWERS - LOG_SUB + 1) * SUB_BUCKETS;

/// A fixed-memory latency histogram with logarithmic buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Bucket index of a nanosecond value.
    fn bucket_of(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        // The leading power of two selects the coarse bucket; the next
        // log2(SUB_BUCKETS) bits select the sub-bucket.
        let power = 63 - ns.leading_zeros() as usize;
        let shift = power.saturating_sub(LOG_SUB);
        let sub = ((ns >> shift) as usize) & (SUB_BUCKETS - 1);
        ((power + 1 - LOG_SUB) * SUB_BUCKETS + sub).min(NUM_BUCKETS - 1)
    }

    /// Representative (lower-bound) nanosecond value of a bucket.
    fn bucket_floor(bucket: usize) -> u64 {
        if bucket < SUB_BUCKETS {
            return bucket as u64;
        }
        let power = (bucket / SUB_BUCKETS + LOG_SUB - 1).min(63);
        let sub = bucket % SUB_BUCKETS;
        (1u64 << power).saturating_add((sub as u64) << (power - LOG_SUB))
    }

    /// Records one nanosecond sample.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records a [`Duration`] sample.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The latency at quantile `q ∈ [0, 1]`, in nanoseconds. The value is the
    /// lower bound of the bucket holding the q-th sample (so the error is at
    /// most one sub-bucket width, ~6% with 16 sub-buckets), clamped to the
    /// recorded min/max.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Self::bucket_floor(bucket).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median latency in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th-percentile latency in nanoseconds — the serving-tail metric
    /// the load generator reports alongside p50/p99.
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        if other.total > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "n={} mean={:.0}ns p50={}ns p99={}ns p99.9={}ns max={}ns",
            self.total,
            self.mean_ns(),
            self.p50_ns(),
            self.p99_ns(),
            self.p999_ns(),
            self.max_ns()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for ns in [3u64, 5, 5, 7, 9] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min_ns(), 3);
        assert_eq!(h.max_ns(), 9);
        assert!((h.mean_ns() - 5.8).abs() < 1e-9);
        assert_eq!(h.p50_ns(), 5);
        assert_eq!(h.quantile_ns(1.0), 9);
        assert_eq!(h.quantile_ns(0.0), 3);
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=100_000u64 {
            h.record_ns(ns);
        }
        let p50 = h.p50_ns() as f64;
        let p99 = h.p99_ns() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.10, "p50 {p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.10, "p99 {p99}");
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.max_ns(), 100_000);
        assert_eq!(h.min_ns(), 1);
    }

    #[test]
    fn handles_large_values_without_overflow() {
        let mut h = LatencyHistogram::new();
        h.record_ns(u64::MAX);
        h.record_ns(1);
        h.record(Duration::from_secs(2));
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_ns(), u64::MAX);
        assert!(h.quantile_ns(1.0) >= 2_000_000_000);
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..1_000u64 {
            let ns = 100 + i * 17 % 5_000;
            if i % 2 == 0 {
                a.record_ns(ns);
            } else {
                b.record_ns(ns);
            }
            all.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.p50_ns(), all.p50_ns());
        assert_eq!(a.p99_ns(), all.p99_ns());
        assert_eq!(a.p999_ns(), all.p999_ns());
        assert_eq!(a.min_ns(), all.min_ns());
        assert_eq!(a.max_ns(), all.max_ns());
        assert!(!a.summary_line().is_empty());
    }

    /// The lock-free per-worker recording scheme the server relies on:
    /// every worker records into its own histogram and the shards are
    /// merged afterwards. Merging in any order and grouping must be
    /// indistinguishable (on every reported statistic, at every quantile)
    /// from recording the concatenated sample stream into one histogram.
    #[test]
    fn sharded_merge_equals_single_histogram_on_the_concatenated_stream() {
        let workers = 5usize;
        let mut shards = vec![LatencyHistogram::new(); workers];
        let mut single = LatencyHistogram::new();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..10_000u64 {
            // Cheap xorshift over a wide dynamic range (ns .. tens of ms).
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let ns = state % (1 << (10 + (i % 15)));
            shards[(i % workers as u64) as usize].record_ns(ns);
            single.record_ns(ns);
        }
        let mut merged = LatencyHistogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.min_ns(), single.min_ns());
        assert_eq!(merged.max_ns(), single.max_ns());
        assert!((merged.mean_ns() - single.mean_ns()).abs() < 1e-6);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile_ns(q), single.quantile_ns(q), "q={q}");
        }
        assert_eq!(merged.summary_line(), single.summary_line());
    }

    #[test]
    fn p999_sits_between_p99_and_max() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=10_000u64 {
            h.record_ns(ns);
        }
        assert!(h.p99_ns() <= h.p999_ns());
        assert!(h.p999_ns() <= h.max_ns());
        let p999 = h.p999_ns() as f64;
        assert!((p999 - 9_990.0).abs() / 9_990.0 < 0.10, "p99.9 {p999}");
        assert!(h.summary_line().contains("p99.9="));
    }

    #[test]
    fn bucket_floor_is_monotone_and_consistent() {
        let mut last_floor = 0u64;
        for bucket in 0..NUM_BUCKETS {
            let floor = LatencyHistogram::bucket_floor(bucket);
            assert!(
                floor >= last_floor,
                "bucket {bucket}: {floor} < {last_floor}"
            );
            last_floor = floor;
        }
        // A value always lands in a bucket whose floor is <= the value.
        for ns in [0u64, 1, 15, 16, 17, 1_000, 123_456, 1 << 40, u64::MAX / 2] {
            let bucket = LatencyHistogram::bucket_of(ns);
            assert!(LatencyHistogram::bucket_floor(bucket) <= ns, "ns={ns}");
        }
    }
}
