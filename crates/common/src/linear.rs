//! Ordinary-least-squares linear models mapping keys to positions.
//!
//! Every learned index in this workspace uses linear indexing functions
//! `f(k) = w·k + b` (the paper restricts itself to linear functions for
//! efficiency, §3). Models are fitted either from explicit `(key, rank)`
//! pairs or from running sufficient statistics, which is what the smoothing
//! algorithm in `csv-core` relies on.

use crate::key::Key;
use serde::{Deserialize, Serialize};

/// A linear indexing function `f(k) = slope · k + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Slope `w` of the indexing function.
    pub slope: f64,
    /// Intercept `b` of the indexing function.
    pub intercept: f64,
}

impl Default for LinearModel {
    fn default() -> Self {
        Self {
            slope: 0.0,
            intercept: 0.0,
        }
    }
}

impl LinearModel {
    /// Creates a model from explicit parameters.
    #[inline]
    pub fn new(slope: f64, intercept: f64) -> Self {
        Self { slope, intercept }
    }

    /// Predicts the (real-valued) position of `key`.
    #[inline]
    pub fn predict_f64(&self, key: Key) -> f64 {
        self.slope * key as f64 + self.intercept
    }

    /// Predicts a position clamped to `[0, upper)` and rounded to the nearest
    /// slot, which is how the indexes turn model output into an array slot.
    #[inline]
    pub fn predict_clamped(&self, key: Key, upper: usize) -> usize {
        if upper == 0 {
            return 0;
        }
        let p = self.predict_f64(key);
        if p <= 0.0 {
            0
        } else {
            let p = p.round() as usize;
            p.min(upper - 1)
        }
    }

    /// Fits the least-squares line through `(keys[i], positions[i])`.
    ///
    /// Keys are centred on the first key before accumulating the sufficient
    /// statistics: real datasets (e.g. Snowflake-style tweet IDs) combine a
    /// huge absolute offset with a comparatively small spread, and fitting on
    /// raw values would lose the entire signal to floating-point
    /// cancellation. Returns a flat model through the mean position when the
    /// keys carry no variance (all equal, or fewer than two points).
    pub fn fit_points(keys: &[Key], positions: &[f64]) -> Self {
        debug_assert_eq!(keys.len(), positions.len());
        let n = keys.len();
        if n == 0 {
            return Self::default();
        }
        if n == 1 {
            return Self::new(0.0, positions[0]);
        }
        let origin = keys[0];
        let mut stats = FitStats::default();
        for (&k, &y) in keys.iter().zip(positions.iter()) {
            stats.push((k - origin) as f64, y);
        }
        stats.fit().uncenter(origin)
    }

    /// Fits the least-squares line through `(keys[i], i)` — the model of the
    /// empirical CDF of a sorted key slice. Keys are centred on the first
    /// key before fitting (see [`LinearModel::fit_points`]).
    pub fn fit_cdf(keys: &[Key]) -> Self {
        let n = keys.len();
        if n == 0 {
            return Self::default();
        }
        if n == 1 {
            return Self::new(0.0, 0.0);
        }
        let origin = keys[0];
        let mut stats = FitStats::default();
        for (i, &k) in keys.iter().enumerate() {
            stats.push((k - origin) as f64, i as f64);
        }
        stats.fit().uncenter(origin)
    }

    /// Converts a model fitted on `key - origin` back to absolute keys:
    /// `w·(k − o) + b = w·k + (b − w·o)`.
    #[inline]
    pub fn uncenter(self, origin: Key) -> Self {
        Self {
            slope: self.slope,
            intercept: self.intercept - self.slope * origin as f64,
        }
    }

    /// Sum of squared errors of this model over `(keys[i], positions[i])`.
    pub fn sse(&self, keys: &[Key], positions: &[f64]) -> f64 {
        keys.iter()
            .zip(positions.iter())
            .map(|(&k, &y)| {
                let e = self.predict_f64(k) - y;
                e * e
            })
            .sum()
    }

    /// Sum of squared errors of this model against the empirical CDF of a
    /// sorted key slice (position of `keys[i]` is `i`).
    pub fn sse_cdf(&self, keys: &[Key]) -> f64 {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| {
                let e = self.predict_f64(k) - i as f64;
                e * e
            })
            .sum()
    }

    /// Maximum absolute prediction error against the empirical CDF.
    pub fn max_abs_error_cdf(&self, keys: &[Key]) -> f64 {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| (self.predict_f64(k) - i as f64).abs())
            .fold(0.0, f64::max)
    }
}

/// Running sufficient statistics for a least-squares fit of `y` on `x`.
///
/// Collecting `n, Σx, Σy, Σx², Σy², Σxy` is enough to produce the OLS slope,
/// intercept and SSE in O(1); the CDF-smoothing algorithm in `csv-core`
/// maintains exactly these quantities incrementally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FitStats {
    /// Number of points.
    pub n: f64,
    /// Sum of x.
    pub sum_x: f64,
    /// Sum of y.
    pub sum_y: f64,
    /// Sum of x².
    pub sum_xx: f64,
    /// Sum of y².
    pub sum_yy: f64,
    /// Sum of x·y.
    pub sum_xy: f64,
}

impl FitStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a point.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1.0;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_yy += y * y;
        self.sum_xy += x * y;
    }

    /// Removes a previously added point.
    #[inline]
    pub fn remove(&mut self, x: f64, y: f64) {
        self.n -= 1.0;
        self.sum_x -= x;
        self.sum_y -= y;
        self.sum_xx -= x * x;
        self.sum_yy -= y * y;
        self.sum_xy -= x * y;
    }

    /// Merges another set of statistics into this one.
    #[inline]
    pub fn merge(&mut self, other: &FitStats) {
        self.n += other.n;
        self.sum_x += other.sum_x;
        self.sum_y += other.sum_y;
        self.sum_xx += other.sum_xx;
        self.sum_yy += other.sum_yy;
        self.sum_xy += other.sum_xy;
    }

    /// Mean of x, or 0 when empty.
    #[inline]
    pub fn mean_x(&self) -> f64 {
        if self.n > 0.0 {
            self.sum_x / self.n
        } else {
            0.0
        }
    }

    /// Mean of y, or 0 when empty.
    #[inline]
    pub fn mean_y(&self) -> f64 {
        if self.n > 0.0 {
            self.sum_y / self.n
        } else {
            0.0
        }
    }

    /// OLS fit of `y = slope·x + intercept`. Degenerate inputs (no x
    /// variance) produce a flat line through the mean.
    pub fn fit(&self) -> LinearModel {
        if self.n < 2.0 {
            return LinearModel::new(0.0, self.mean_y());
        }
        let sxx = self.sum_xx - self.sum_x * self.sum_x / self.n;
        if sxx.abs() < f64::EPSILON || !sxx.is_finite() {
            return LinearModel::new(0.0, self.mean_y());
        }
        let sxy = self.sum_xy - self.sum_x * self.sum_y / self.n;
        let slope = sxy / sxx;
        let intercept = self.mean_y() - slope * self.mean_x();
        LinearModel::new(slope, intercept)
    }

    /// Sum of squared errors of the OLS fit, computed directly from the
    /// sufficient statistics (no pass over the data).
    pub fn sse_of_fit(&self) -> f64 {
        if self.n < 2.0 {
            return 0.0;
        }
        let sxx = self.sum_xx - self.sum_x * self.sum_x / self.n;
        let syy = self.sum_yy - self.sum_y * self.sum_y / self.n;
        if sxx.abs() < f64::EPSILON {
            return syy.max(0.0);
        }
        let sxy = self.sum_xy - self.sum_x * self.sum_y / self.n;
        let sse = syy - sxy * sxy / sxx;
        sse.max(0.0)
    }

    /// SSE of an arbitrary (not necessarily OLS) model over the accumulated
    /// points, again in O(1):
    /// `Σ(w·x + b − y)² = w²Σx² + 2wbΣx − 2wΣxy + n b² − 2bΣy + Σy²`.
    pub fn sse_of_model(&self, model: &LinearModel) -> f64 {
        let w = model.slope;
        let b = model.intercept;
        let sse = w * w * self.sum_xx + 2.0 * w * b * self.sum_x - 2.0 * w * self.sum_xy
            + self.n * b * b
            - 2.0 * b * self.sum_y
            + self.sum_yy;
        sse.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn fit_exact_line() {
        let keys: Vec<Key> = (0..100).map(|i| i * 3 + 7).collect();
        let model = LinearModel::fit_cdf(&keys);
        assert!(close(model.slope, 1.0 / 3.0), "slope {}", model.slope);
        assert!(close(model.sse_cdf(&keys), 0.0));
        assert_eq!(model.predict_clamped(7, 100), 0);
        assert_eq!(model.predict_clamped(7 + 3 * 99, 100), 99);
    }

    #[test]
    fn fit_degenerate_inputs() {
        assert_eq!(LinearModel::fit_cdf(&[]), LinearModel::default());
        let m = LinearModel::fit_cdf(&[5]);
        assert_eq!(m.predict_clamped(5, 1), 0);
        // All-equal x values: flat model through mean of y.
        let m = LinearModel::fit_points(&[4, 4, 4], &[0.0, 1.0, 2.0]);
        assert!(close(m.slope, 0.0));
        assert!(close(m.intercept, 1.0));
    }

    #[test]
    fn predict_clamps_to_range() {
        let m = LinearModel::new(2.0, -5.0);
        assert_eq!(m.predict_clamped(0, 10), 0);
        assert_eq!(m.predict_clamped(100, 10), 9);
        assert_eq!(m.predict_clamped(4, 10), 3);
        assert_eq!(m.predict_clamped(4, 0), 0);
    }

    #[test]
    fn stats_fit_matches_direct_fit() {
        let keys: Vec<Key> = vec![2, 3, 5, 9, 14, 20, 26, 27, 29, 30];
        let direct = LinearModel::fit_cdf(&keys);
        let mut stats = FitStats::new();
        for (i, &k) in keys.iter().enumerate() {
            stats.push(k as f64, i as f64);
        }
        let from_stats = stats.fit();
        assert!(close(direct.slope, from_stats.slope));
        assert!(close(direct.intercept, from_stats.intercept));
        assert!(close(direct.sse_cdf(&keys), stats.sse_of_fit()));
        assert!(close(stats.sse_of_model(&from_stats), stats.sse_of_fit()));
    }

    #[test]
    fn stats_push_remove_roundtrip() {
        let mut stats = FitStats::new();
        stats.push(1.0, 2.0);
        stats.push(3.0, 4.0);
        stats.push(5.0, 5.0);
        let before = stats;
        stats.push(10.0, 11.0);
        stats.remove(10.0, 11.0);
        assert!(close(before.sum_xy, stats.sum_xy));
        assert!(close(before.sum_yy, stats.sum_yy));
        assert_eq!(before.n, stats.n);
    }

    #[test]
    fn merge_equals_pushing_everything() {
        let mut a = FitStats::new();
        let mut b = FitStats::new();
        let mut all = FitStats::new();
        for i in 0..10 {
            let (x, y) = (i as f64, (i * i) as f64);
            if i % 2 == 0 {
                a.push(x, y);
            } else {
                b.push(x, y);
            }
            all.push(x, y);
        }
        a.merge(&b);
        assert!(close(a.sse_of_fit(), all.sse_of_fit()));
    }

    #[test]
    fn max_abs_error_reflects_worst_key() {
        let keys: Vec<Key> = vec![0, 1, 2, 3, 1000];
        let m = LinearModel::fit_cdf(&keys);
        assert!(m.max_abs_error_cdf(&keys) > 0.5);
    }

    #[test]
    fn fit_is_stable_under_huge_key_offsets() {
        // Snowflake-ID-like keys: offset ~6.6e14 with a spread of ~2.5e7.
        // Without centring, the OLS sums cancel catastrophically.
        let offset: Key = 665_600_000_000_000;
        let keys: Vec<Key> = (0..10_000u64)
            .map(|i| offset + i * 1285 + (i % 7))
            .collect();
        let model = LinearModel::fit_cdf(&keys);
        let max_err = model.max_abs_error_cdf(&keys);
        assert!(max_err < 1.0, "max error {max_err} should be < 1 rank");
        let m2 = LinearModel::fit_points(&keys, &(0..10_000).map(|i| i as f64).collect::<Vec<_>>());
        assert!((m2.slope - model.slope).abs() < 1e-9);
    }

    #[test]
    fn paper_figure2_loss_value() {
        // Fig. 2a: fitting the 10-key example with a single linear function
        // yields a loss (SSE) of 8.33. The exact key set is not listed in the
        // paper; the canonical example reconstructed in csv-core reproduces
        // the value. Here we only check that SSE through FitStats equals SSE
        // computed point-wise for an irregular set.
        let keys: Vec<Key> = vec![1, 2, 3, 4, 5, 6, 7, 20, 26, 30];
        let m = LinearModel::fit_cdf(&keys);
        let direct = m.sse_cdf(&keys);
        let mut stats = FitStats::new();
        for (i, &k) in keys.iter().enumerate() {
            stats.push(k as f64, i as f64);
        }
        assert!(close(direct, stats.sse_of_fit()));
    }
}
