//! Quadratic indexing functions `f(k) = a·k² + b·k + c`.
//!
//! The paper restricts its discussion to linear indexing functions for
//! efficiency but notes (§1) that CDF smoothing "can naturally extend to more
//! complex (e.g., quadratic) functions". This module provides the quadratic
//! model class used by that extension: an ordinary-least-squares parabola fit
//! from explicit points or from running sufficient statistics, mirroring the
//! [`LinearModel`](crate::LinearModel) / [`FitStats`](crate::linear::FitStats)
//! pair used everywhere else.
//!
//! All fits centre the keys on the first key before accumulating moments so
//! that datasets with huge absolute key values (Snowflake IDs, S2 cell IDs)
//! do not lose the signal to floating-point cancellation; fourth powers of
//! raw 64-bit keys would overflow `f64` precision immediately.

use crate::key::Key;
use serde::{Deserialize, Serialize};

/// A quadratic indexing function `f(k) = a·k² + b·k + c`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadraticModel {
    /// Quadratic coefficient `a`.
    pub a: f64,
    /// Linear coefficient `b`.
    pub b: f64,
    /// Constant coefficient `c`.
    pub c: f64,
    /// Key-space origin the model was fitted on; predictions shift the key by
    /// this amount before evaluating the polynomial.
    pub origin: Key,
}

impl Default for QuadraticModel {
    fn default() -> Self {
        Self {
            a: 0.0,
            b: 0.0,
            c: 0.0,
            origin: 0,
        }
    }
}

impl QuadraticModel {
    /// Creates a model from explicit coefficients over `k − origin`.
    #[inline]
    pub fn new(a: f64, b: f64, c: f64, origin: Key) -> Self {
        Self { a, b, c, origin }
    }

    /// Shifts a key into the model's centred coordinate system.
    #[inline]
    fn shift(&self, key: Key) -> f64 {
        if key >= self.origin {
            (key - self.origin) as f64
        } else {
            -((self.origin - key) as f64)
        }
    }

    /// Predicts the (real-valued) position of `key`.
    #[inline]
    pub fn predict_f64(&self, key: Key) -> f64 {
        let x = self.shift(key);
        (self.a * x + self.b) * x + self.c
    }

    /// Predicts a position clamped to `[0, upper)` and rounded to the nearest
    /// slot.
    #[inline]
    pub fn predict_clamped(&self, key: Key, upper: usize) -> usize {
        if upper == 0 {
            return 0;
        }
        let p = self.predict_f64(key);
        if p <= 0.0 {
            0
        } else {
            (p.round() as usize).min(upper - 1)
        }
    }

    /// Fits the least-squares parabola through `(keys[i], positions[i])`.
    ///
    /// Falls back to a degenerate (lower-order) fit when the keys carry no
    /// quadratic signal: fewer than three distinct keys produce the best
    /// linear or constant model expressed with `a = 0`.
    pub fn fit_points(keys: &[Key], positions: &[f64]) -> Self {
        debug_assert_eq!(keys.len(), positions.len());
        let origin = keys.first().copied().unwrap_or(0);
        let mut stats = QuadFitStats::with_origin(origin);
        for (&k, &y) in keys.iter().zip(positions.iter()) {
            stats.push_key(k, y);
        }
        stats.fit()
    }

    /// Fits the least-squares parabola through `(keys[i], i)` — the quadratic
    /// model of the empirical CDF of a sorted key slice.
    pub fn fit_cdf(keys: &[Key]) -> Self {
        let origin = keys.first().copied().unwrap_or(0);
        let mut stats = QuadFitStats::with_origin(origin);
        for (i, &k) in keys.iter().enumerate() {
            stats.push_key(k, i as f64);
        }
        stats.fit()
    }

    /// Sum of squared errors over explicit `(key, position)` pairs.
    pub fn sse(&self, keys: &[Key], positions: &[f64]) -> f64 {
        keys.iter()
            .zip(positions.iter())
            .map(|(&k, &y)| {
                let e = self.predict_f64(k) - y;
                e * e
            })
            .sum()
    }

    /// Sum of squared errors against the empirical CDF of a sorted key slice.
    pub fn sse_cdf(&self, keys: &[Key]) -> f64 {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| {
                let e = self.predict_f64(k) - i as f64;
                e * e
            })
            .sum()
    }

    /// Maximum absolute prediction error against the empirical CDF.
    pub fn max_abs_error_cdf(&self, keys: &[Key]) -> f64 {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| (self.predict_f64(k) - i as f64).abs())
            .fold(0.0, f64::max)
    }
}

/// Running sufficient statistics for a quadratic least-squares fit of `y` on
/// centred keys `x = k − origin`.
///
/// The moments `n, Σx, Σx², Σx³, Σx⁴, Σy, Σxy, Σx²y, Σy²` are enough to solve
/// the 3×3 normal equations and to evaluate the SSE of the resulting fit in
/// O(1), which is what the quadratic smoothing extension in `csv-core` relies
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadFitStats {
    /// Key-space origin; callers must shift keys consistently.
    pub origin: Key,
    /// Number of points.
    pub n: f64,
    /// Σx.
    pub sum_x: f64,
    /// Σx².
    pub sum_x2: f64,
    /// Σx³.
    pub sum_x3: f64,
    /// Σx⁴.
    pub sum_x4: f64,
    /// Σy.
    pub sum_y: f64,
    /// Σx·y.
    pub sum_xy: f64,
    /// Σx²·y.
    pub sum_x2y: f64,
    /// Σy².
    pub sum_yy: f64,
}

impl QuadFitStats {
    /// Creates empty statistics centred on `origin`.
    pub fn with_origin(origin: Key) -> Self {
        Self {
            origin,
            n: 0.0,
            sum_x: 0.0,
            sum_x2: 0.0,
            sum_x3: 0.0,
            sum_x4: 0.0,
            sum_y: 0.0,
            sum_xy: 0.0,
            sum_x2y: 0.0,
            sum_yy: 0.0,
        }
    }

    /// Shifts an absolute key into the centred coordinate system.
    #[inline]
    pub fn shift(&self, key: Key) -> f64 {
        if key >= self.origin {
            (key - self.origin) as f64
        } else {
            -((self.origin - key) as f64)
        }
    }

    /// Adds the point `(key, y)`.
    #[inline]
    pub fn push_key(&mut self, key: Key, y: f64) {
        self.push(self.shift(key), y);
    }

    /// Adds an already-shifted point `(x, y)`.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        let x2 = x * x;
        self.n += 1.0;
        self.sum_x += x;
        self.sum_x2 += x2;
        self.sum_x3 += x2 * x;
        self.sum_x4 += x2 * x2;
        self.sum_y += y;
        self.sum_xy += x * y;
        self.sum_x2y += x2 * y;
        self.sum_yy += y * y;
    }

    /// Removes a previously added already-shifted point.
    #[inline]
    pub fn remove(&mut self, x: f64, y: f64) {
        let x2 = x * x;
        self.n -= 1.0;
        self.sum_x -= x;
        self.sum_x2 -= x2;
        self.sum_x3 -= x2 * x;
        self.sum_x4 -= x2 * x2;
        self.sum_y -= y;
        self.sum_xy -= x * y;
        self.sum_x2y -= x2 * y;
        self.sum_yy -= y * y;
    }

    /// Solves the normal equations and returns the OLS parabola. Degenerate
    /// inputs (rank-deficient moment matrix) fall back to the best linear or
    /// constant fit with `a = 0`.
    pub fn fit(&self) -> QuadraticModel {
        if self.n < 1.0 {
            return QuadraticModel::new(0.0, 0.0, 0.0, self.origin);
        }
        if self.n < 3.0 {
            return self.linear_fallback();
        }
        // Normal equations for [c, b, a]:
        // | n    Σx   Σx² | |c|   | Σy   |
        // | Σx   Σx²  Σx³ | |b| = | Σxy  |
        // | Σx²  Σx³  Σx⁴ | |a|   | Σx²y |
        let m = [
            [self.n, self.sum_x, self.sum_x2],
            [self.sum_x, self.sum_x2, self.sum_x3],
            [self.sum_x2, self.sum_x3, self.sum_x4],
        ];
        let rhs = [self.sum_y, self.sum_xy, self.sum_x2y];
        match solve_3x3(m, rhs) {
            Some([c, b, a]) if a.is_finite() && b.is_finite() && c.is_finite() => {
                QuadraticModel::new(a, b, c, self.origin)
            }
            _ => self.linear_fallback(),
        }
    }

    /// Best linear (or constant) model expressed as a quadratic with `a = 0`.
    fn linear_fallback(&self) -> QuadraticModel {
        if self.n < 2.0 {
            let c = if self.n > 0.0 {
                self.sum_y / self.n
            } else {
                0.0
            };
            return QuadraticModel::new(0.0, 0.0, c, self.origin);
        }
        let sxx = self.sum_x2 - self.sum_x * self.sum_x / self.n;
        if sxx.abs() < f64::EPSILON || !sxx.is_finite() {
            return QuadraticModel::new(0.0, 0.0, self.sum_y / self.n, self.origin);
        }
        let sxy = self.sum_xy - self.sum_x * self.sum_y / self.n;
        let b = sxy / sxx;
        let c = (self.sum_y - b * self.sum_x) / self.n;
        QuadraticModel::new(0.0, b, c, self.origin)
    }

    /// SSE of an arbitrary quadratic model over the accumulated points, in
    /// O(1):
    /// `Σ(a·x² + b·x + c − y)²` expanded in the stored moments.
    pub fn sse_of_model(&self, model: &QuadraticModel) -> f64 {
        let (a, b, c) = (model.a, model.b, model.c);
        let sse = a * a * self.sum_x4
            + b * b * self.sum_x2
            + c * c * self.n
            + self.sum_yy
            + 2.0 * a * b * self.sum_x3
            + 2.0 * a * c * self.sum_x2
            + 2.0 * b * c * self.sum_x
            - 2.0 * a * self.sum_x2y
            - 2.0 * b * self.sum_xy
            - 2.0 * c * self.sum_y;
        sse.max(0.0)
    }

    /// SSE of the OLS fit itself (fit + evaluate, both in O(1)).
    pub fn sse_of_fit(&self) -> f64 {
        let model = self.fit();
        self.sse_of_model(&model)
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial pivoting.
/// Returns `None` when the matrix is (numerically) singular.
fn solve_3x3(m: [[f64; 3]; 3], rhs: [f64; 3]) -> Option<[f64; 3]> {
    let mut a = [
        [m[0][0], m[0][1], m[0][2], rhs[0]],
        [m[1][0], m[1][1], m[1][2], rhs[1]],
        [m[2][0], m[2][1], m[2][2], rhs[2]],
    ];
    for col in 0..3 {
        // Partial pivoting.
        let pivot_row = (col..3)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        for row in (col + 1)..3 {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot = &pivot_rows[col];
            for (k, cell) in rest[0].iter_mut().enumerate().skip(col) {
                *cell -= factor * pivot[k];
            }
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = a[row][3];
        for k in (row + 1)..3 {
            acc -= a[row][k] * x[k];
        }
        if a[row][row].abs() < 1e-12 {
            return None;
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn fits_exact_parabola() {
        // y = 2x² + 3x + 1 over x = 0..20 (keys offset by 1000).
        let keys: Vec<Key> = (0..20u64).map(|i| 1000 + i).collect();
        let ys: Vec<f64> = (0..20u64)
            .map(|x| 2.0 * (x * x) as f64 + 3.0 * x as f64 + 1.0)
            .collect();
        let model = QuadraticModel::fit_points(&keys, &ys);
        assert!(close(model.a, 2.0), "a = {}", model.a);
        assert!(close(model.b, 3.0), "b = {}", model.b);
        assert!(close(model.c, 1.0), "c = {}", model.c);
        assert!(model.sse(&keys, &ys) < 1e-6);
    }

    #[test]
    fn fits_exact_line_with_zero_quadratic_term() {
        let keys: Vec<Key> = (0..50u64).map(|i| i * 7 + 3).collect();
        let model = QuadraticModel::fit_cdf(&keys);
        assert!(model.a.abs() < 1e-9, "a = {}", model.a);
        assert!(close(model.b, 1.0 / 7.0), "b = {}", model.b);
        assert!(model.sse_cdf(&keys) < 1e-6);
        assert!(model.max_abs_error_cdf(&keys) < 1e-3);
    }

    #[test]
    fn quadratic_fit_never_worse_than_linear_on_curved_cdf() {
        // Quadratically growing keys: rank ~ sqrt(key), which a parabola in
        // key cannot capture exactly but fits strictly better than a line.
        let keys: Vec<Key> = (0..200u64).map(|i| i * i + 10).collect();
        let quad = QuadraticModel::fit_cdf(&keys);
        let linear = crate::LinearModel::fit_cdf(&keys);
        assert!(quad.sse_cdf(&keys) < linear.sse_cdf(&keys));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(QuadraticModel::fit_cdf(&[]).predict_clamped(10, 5), 0);
        let single = QuadraticModel::fit_cdf(&[42]);
        assert!(close(single.predict_f64(42), 0.0));
        let two = QuadraticModel::fit_cdf(&[10, 20]);
        assert!(two.a.abs() < 1e-12, "two points fall back to a line");
        assert!(close(two.predict_f64(10), 0.0));
        assert!(close(two.predict_f64(20), 1.0));
        // All-equal x: flat model through mean of y.
        let flat = QuadraticModel::fit_points(&[5, 5, 5], &[1.0, 2.0, 3.0]);
        assert!(close(flat.predict_f64(5), 2.0));
    }

    #[test]
    fn predict_clamps_to_range() {
        let m = QuadraticModel::new(0.0, 2.0, -5.0, 0);
        assert_eq!(m.predict_clamped(0, 10), 0);
        assert_eq!(m.predict_clamped(100, 10), 9);
        assert_eq!(m.predict_clamped(4, 10), 3);
        assert_eq!(m.predict_clamped(4, 0), 0);
    }

    #[test]
    fn stats_fit_matches_direct_fit() {
        let keys: Vec<Key> = vec![2, 3, 5, 9, 14, 20, 26, 27, 29, 30];
        let direct = QuadraticModel::fit_cdf(&keys);
        let mut stats = QuadFitStats::with_origin(keys[0]);
        for (i, &k) in keys.iter().enumerate() {
            stats.push_key(k, i as f64);
        }
        let from_stats = stats.fit();
        assert!(close(direct.a, from_stats.a));
        assert!(close(direct.b, from_stats.b));
        assert!(close(direct.c, from_stats.c));
        assert!(close(direct.sse_cdf(&keys), stats.sse_of_fit()));
        assert!(close(stats.sse_of_model(&from_stats), stats.sse_of_fit()));
    }

    #[test]
    fn stats_push_remove_roundtrip() {
        let mut stats = QuadFitStats::with_origin(0);
        for i in 0..10 {
            stats.push(i as f64, (i * i) as f64);
        }
        let before = stats;
        stats.push(50.0, 17.0);
        stats.remove(50.0, 17.0);
        assert!(close(before.sum_x4, stats.sum_x4));
        assert!(close(before.sum_x2y, stats.sum_x2y));
        assert!(close(before.sse_of_fit(), stats.sse_of_fit()));
    }

    #[test]
    fn huge_key_offsets_stay_stable() {
        let offset: Key = 665_600_000_000_000;
        let keys: Vec<Key> = (0..5_000u64).map(|i| offset + i * i / 8 + i).collect();
        let model = QuadraticModel::fit_cdf(&keys);
        // The parabola must track the sqrt-like CDF much better than a naive
        // uncentred fit would (which would be pure noise).
        let rmse = (model.sse_cdf(&keys) / keys.len() as f64).sqrt();
        assert!(rmse < keys.len() as f64 * 0.05, "rmse {rmse}");
    }

    #[test]
    fn solve_3x3_rejects_singular_systems() {
        let singular = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 1.0]];
        assert!(solve_3x3(singular, [1.0, 2.0, 3.0]).is_none());
        let identity = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        let x = solve_3x3(identity, [4.0, 5.0, 6.0]).unwrap();
        assert_eq!(x, [4.0, 5.0, 6.0]);
    }
}
