//! Synchronization shims: the workspace's single gateway to atomics and
//! locks.
//!
//! Every crate in the workspace that synchronizes between threads imports
//! its primitives from here instead of from `std::sync::atomic` /
//! `parking_lot` directly (`cargo xtask lint` enforces this). The payoff is
//! that the whole concurrency core can be re-compiled against the
//! deterministic model checker:
//!
//! * **Normally** (no `check` feature) the module is pure re-exports —
//!   `std` atomics and the `parking_lot` locks, zero added cost.
//! * **Under the `check` feature** every type is an instrumented wrapper
//!   that announces each operation to `csv_check`'s controlled scheduler
//!   as a *yield point*. Inside a `csv_check::explore_*` run, the scheduler
//!   then drives the interleaving of every atomic load/store/RMW and every
//!   lock acquisition — deterministically, exhaustively for small tests.
//!   Outside a controlled run the instrumented operations degrade to their
//!   plain equivalents, so a `--features check` build still behaves
//!   normally in ordinary tests and binaries.
//!
//! The lock API is `parking_lot`-shaped (no poisoning: `lock()`/`read()`/
//! `write()` return guards directly). Blocking acquisitions in check mode
//! are try-acquire loops that deprioritize the waiter via
//! `csv_check::yield_now`, which keeps the exhaustive schedule tree
//! finite (see the scheduler's fairness rule).
//!
//! [`yield_now`] and [`spin_loop`] are re-exported here so hand-rolled
//! wait loops (the RCU grace-period drain, retired-handle retry backoff)
//! route their hints through the same instrumentation.

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "check"))]
mod imp {
    pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
    pub use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize};

    /// Yields the CPU to another thread (`std::thread::yield_now`).
    #[inline(always)]
    pub fn yield_now() {
        std::thread::yield_now();
    }

    /// Spin-wait hint (`std::hint::spin_loop`).
    #[inline(always)]
    pub fn spin_loop() {
        std::hint::spin_loop();
    }

    /// Model-checker schedule point: a no-op outside check builds.
    #[inline(always)]
    pub fn yield_point() {}
}

#[cfg(feature = "check")]
mod imp {
    use super::Ordering;
    use std::sync::{PoisonError, TryLockError};

    pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

    /// Model-checker schedule point (see [`csv_check::yield_point`]).
    #[inline]
    pub fn yield_point() {
        csv_check::yield_point();
    }

    /// Deprioritizing yield: under a controlled schedule another thread
    /// executes at least one operation before the caller is reconsidered.
    #[inline]
    pub fn yield_now() {
        csv_check::yield_now();
    }

    /// Spin hint. Under the checker a spin is only meaningful if it lets
    /// someone else run, so it maps to the deprioritizing yield — this is
    /// what keeps `while x.load() != 0 { spin_loop() }` loops bounded in
    /// exhaustive exploration.
    #[inline]
    pub fn spin_loop() {
        csv_check::yield_now();
    }

    macro_rules! checked_atomic {
        ($name:ident, $std:ty, $t:ty) => {
            /// Instrumented atomic: every operation is a scheduler yield
            /// point; the operation itself runs while the thread holds the
            /// run token, so it is globally ordered (sequentially
            /// consistent regardless of the `Ordering` argument — the
            /// checker validates protocols, TSan validates orderings).
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic (const, so statics work).
                pub const fn new(value: $t) -> Self {
                    Self {
                        inner: <$std>::new(value),
                    }
                }

                /// Instrumented load.
                pub fn load(&self, order: Ordering) -> $t {
                    yield_point();
                    self.inner.load(order)
                }

                /// Instrumented store.
                pub fn store(&self, value: $t, order: Ordering) {
                    yield_point();
                    self.inner.store(value, order);
                }

                /// Instrumented swap.
                pub fn swap(&self, value: $t, order: Ordering) -> $t {
                    yield_point();
                    self.inner.swap(value, order)
                }

                /// Consumes the atomic (no yield: exclusive access).
                pub fn into_inner(self) -> $t {
                    self.inner.into_inner()
                }

                /// Mutable access (no yield: exclusive access).
                pub fn get_mut(&mut self) -> &mut $t {
                    self.inner.get_mut()
                }
            }
        };
    }

    macro_rules! checked_atomic_arith {
        ($name:ident, $t:ty) => {
            impl $name {
                /// Instrumented fetch-add.
                pub fn fetch_add(&self, value: $t, order: Ordering) -> $t {
                    yield_point();
                    self.inner.fetch_add(value, order)
                }

                /// Instrumented fetch-sub.
                pub fn fetch_sub(&self, value: $t, order: Ordering) -> $t {
                    yield_point();
                    self.inner.fetch_sub(value, order)
                }
            }
        };
    }

    checked_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    checked_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    checked_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    checked_atomic_arith!(AtomicU64, u64);
    checked_atomic_arith!(AtomicUsize, usize);

    /// Instrumented raw-pointer atomic (the RCU publication word).
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// Creates a new atomic pointer.
        pub const fn new(ptr: *mut T) -> Self {
            Self {
                inner: std::sync::atomic::AtomicPtr::new(ptr),
            }
        }

        /// Instrumented load.
        pub fn load(&self, order: Ordering) -> *mut T {
            yield_point();
            self.inner.load(order)
        }

        /// Instrumented store.
        pub fn store(&self, ptr: *mut T, order: Ordering) {
            yield_point();
            self.inner.store(ptr, order);
        }

        /// Instrumented swap.
        pub fn swap(&self, ptr: *mut T, order: Ordering) -> *mut T {
            yield_point();
            self.inner.swap(ptr, order)
        }

        /// Mutable access (no yield: exclusive access).
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.inner.get_mut()
        }
    }

    /// Instrumented mutex with the `parking_lot` API. Blocking acquisition
    /// under a controlled schedule is a try-lock loop whose misses
    /// deprioritize the waiter, so lock handoffs are schedule choices.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex around `value`.
        pub fn new(value: T) -> Self {
            Self {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Consumes the mutex and returns the inner value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock, blocking (cooperatively, under the checker)
        /// until available.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            if csv_check::is_controlled() {
                loop {
                    yield_point();
                    match self.inner.try_lock() {
                        Ok(guard) => return guard,
                        Err(TryLockError::Poisoned(p)) => return p.into_inner(),
                        Err(TryLockError::WouldBlock) => csv_check::yield_now(),
                    }
                }
            } else {
                self.inner.lock().unwrap_or_else(PoisonError::into_inner)
            }
        }

        /// Mutable access (no locking needed).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Instrumented reader–writer lock with the `parking_lot` API.
    #[derive(Debug, Default)]
    pub struct RwLock<T: ?Sized> {
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Creates a new lock around `value`.
        pub fn new(value: T) -> Self {
            Self {
                inner: std::sync::RwLock::new(value),
            }
        }

        /// Consumes the lock and returns the inner value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires a shared read lock.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            if csv_check::is_controlled() {
                loop {
                    yield_point();
                    match self.try_read() {
                        Some(guard) => return guard,
                        None => csv_check::yield_now(),
                    }
                }
            } else {
                self.inner.read().unwrap_or_else(PoisonError::into_inner)
            }
        }

        /// Acquires an exclusive write lock.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            if csv_check::is_controlled() {
                loop {
                    yield_point();
                    match self.try_write() {
                        Some(guard) => return guard,
                        None => csv_check::yield_now(),
                    }
                }
            } else {
                self.inner.write().unwrap_or_else(PoisonError::into_inner)
            }
        }

        /// Attempts a shared read lock without blocking.
        pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
            match self.inner.try_read() {
                Ok(guard) => Some(guard),
                Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(TryLockError::WouldBlock) => None,
            }
        }

        /// Attempts an exclusive write lock without blocking.
        pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
            match self.inner.try_write() {
                Ok(guard) => Some(guard),
                Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(TryLockError::WouldBlock) => None,
            }
        }

        /// Mutable access (no locking needed).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

pub use imp::{
    spin_loop, yield_now, yield_point, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Mutex,
    MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomics_and_locks_work_uncontrolled() {
        let n = AtomicUsize::new(1);
        assert_eq!(n.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(n.load(Ordering::SeqCst), 3);
        let flag = AtomicBool::new(false);
        assert!(!flag.swap(true, Ordering::SeqCst));
        let m = Mutex::new(5usize);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
        let rw = RwLock::new(7usize);
        assert_eq!(*rw.read(), 7);
        *rw.write() += 1;
        assert_eq!(rw.into_inner(), 8);
        yield_point();
        spin_loop();
        yield_now();
    }
}
