//! Local search routines used after a model prediction.
//!
//! Learned indexes predict an approximate position and then recover from the
//! prediction error with a bounded local search. ALEX uses exponential
//! search around the predicted slot; PGM searches a `±ε` window with binary
//! search. Both report how many probes they needed so the experiment harness
//! can expose machine-independent cost counters.

use crate::key::Key;

/// The result of a local search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Index of the slot where the key was found, or where it would be
    /// inserted to keep the slice sorted (lower bound) when not found.
    pub position: usize,
    /// Whether the key was found exactly.
    pub found: bool,
    /// Number of key comparisons performed.
    pub comparisons: usize,
}

/// Binary search over `keys[lo..hi]` (sorted ascending) for `target`.
///
/// Returns the lower-bound position within the *whole* slice together with
/// the number of comparisons made.
///
/// Comparison accounting: every loop probe is one three-way key comparison.
/// The final membership check at the lower-bound position is counted only
/// when it actually probes a key — it is skipped entirely when the position
/// is past the end of the slice, and it reuses the loop's result when the
/// last `>=` probe already landed on the lower-bound position (the common
/// case), instead of double-counting that key.
pub fn binary_search_bounded(keys: &[Key], target: Key, lo: usize, hi: usize) -> SearchOutcome {
    let mut lo = lo.min(keys.len());
    let mut hi = hi.min(keys.len());
    let mut comparisons = 0;
    // The most recent probe that established `keys[mid] >= target` (and
    // therefore set `hi = mid`), with whether it compared equal. Whenever
    // the loop ends with such a probe, its position *is* the final lower
    // bound, so the membership result is already known.
    let mut upper_probe: Option<(usize, bool)> = None;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        comparisons += 1;
        match keys[mid].cmp(&target) {
            std::cmp::Ordering::Less => lo = mid + 1,
            ordering => {
                upper_probe = Some((mid, ordering == std::cmp::Ordering::Equal));
                hi = mid;
            }
        }
    }
    let found = match upper_probe {
        Some((position, equal)) if position == lo => equal,
        _ if lo < keys.len() => {
            comparisons += 1;
            keys[lo] == target
        }
        _ => false,
    };
    SearchOutcome {
        position: lo,
        found,
        comparisons,
    }
}

/// Exponential search around a predicted position `hint` in a sorted slice.
///
/// Doubles the search radius until the target is bracketed, then finishes
/// with a bounded binary search. The number of comparisons grows with
/// `log2(|hint − true position|)`, which is exactly the quantity ALEX's cost
/// model tracks.
pub fn exponential_search(keys: &[Key], target: Key, hint: usize) -> SearchOutcome {
    let n = keys.len();
    if n == 0 {
        return SearchOutcome {
            position: 0,
            found: false,
            comparisons: 0,
        };
    }
    let hint = hint.min(n - 1);
    let mut comparisons = 1;
    if keys[hint] == target {
        return SearchOutcome {
            position: hint,
            found: true,
            comparisons,
        };
    }
    if keys[hint] < target {
        // Search to the right.
        let mut bound = 1usize;
        let mut prev = hint;
        loop {
            let next = hint.saturating_add(bound).min(n - 1);
            if next == prev {
                break;
            }
            comparisons += 1;
            if keys[next] >= target {
                let mut out = binary_search_bounded(keys, target, prev + 1, next + 1);
                out.comparisons += comparisons;
                return out;
            }
            prev = next;
            if next == n - 1 {
                break;
            }
            bound <<= 1;
        }
        SearchOutcome {
            position: n,
            found: false,
            comparisons,
        }
    } else {
        // Search to the left.
        let mut bound = 1usize;
        let mut prev = hint;
        loop {
            let next = hint.saturating_sub(bound);
            comparisons += 1;
            if keys[next] <= target {
                let mut out = binary_search_bounded(keys, target, next, prev);
                out.comparisons += comparisons;
                return out;
            }
            prev = next;
            if next == 0 {
                break;
            }
            bound <<= 1;
        }
        SearchOutcome {
            position: 0,
            found: false,
            comparisons,
        }
    }
}

/// Number of exponential-search iterations expected for a prediction error of
/// `err` slots: `log2(err) + 1`, the quantity used by ALEX's cost model and
/// by Eq. 22 of the paper to estimate the expected number of searches.
pub fn expected_search_iterations(err: f64) -> f64 {
    let err = err.abs();
    if err <= 1.0 {
        1.0
    } else {
        err.log2() + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_search_finds_and_lower_bounds() {
        let keys = [2u64, 4, 6, 8, 10];
        let out = binary_search_bounded(&keys, 6, 0, keys.len());
        assert!(out.found);
        assert_eq!(out.position, 2);
        let out = binary_search_bounded(&keys, 7, 0, keys.len());
        assert!(!out.found);
        assert_eq!(out.position, 3);
        let out = binary_search_bounded(&keys, 1, 0, keys.len());
        assert_eq!(out.position, 0);
        let out = binary_search_bounded(&keys, 11, 0, keys.len());
        assert_eq!(out.position, 5);
        assert!(!out.found);
    }

    #[test]
    fn binary_search_respects_bounds() {
        let keys = [1u64, 3, 5, 7, 9, 11];
        let out = binary_search_bounded(&keys, 1, 2, 5);
        assert_eq!(out.position, 2); // clamped to the window
        assert!(!out.found);
        let out = binary_search_bounded(&keys, 7, 2, 5);
        assert!(out.found);
        assert_eq!(out.position, 3);
    }

    #[test]
    fn exponential_search_with_good_and_bad_hints() {
        let keys: Vec<Key> = (0..1000).map(|i| i * 2).collect();
        for &target in &[0u64, 2, 500, 998, 1500, 1998] {
            for &hint in &[0usize, 10, 250, 500, 750, 999] {
                let out = exponential_search(&keys, target, hint);
                let expect = keys.binary_search(&target);
                match expect {
                    Ok(pos) => {
                        assert!(out.found, "target {target} hint {hint}");
                        assert_eq!(out.position, pos);
                    }
                    Err(pos) => {
                        assert!(!out.found, "target {target} hint {hint}");
                        assert_eq!(out.position, pos);
                    }
                }
            }
        }
    }

    #[test]
    fn exponential_search_missing_keys() {
        let keys = [10u64, 20, 30, 40];
        let out = exponential_search(&keys, 5, 3);
        assert!(!out.found);
        assert_eq!(out.position, 0);
        let out = exponential_search(&keys, 45, 0);
        assert!(!out.found);
        assert_eq!(out.position, 4);
        let out = exponential_search(&keys, 25, 1);
        assert!(!out.found);
        assert_eq!(out.position, 2);
        let out = exponential_search(&[], 1, 0);
        assert_eq!(out.position, 0);
    }

    #[test]
    fn near_hints_use_few_comparisons() {
        let keys: Vec<Key> = (0..10_000).collect();
        let exact = exponential_search(&keys, 5000, 5000);
        assert_eq!(exact.comparisons, 1);
        let near = exponential_search(&keys, 5003, 5000);
        let far = exponential_search(&keys, 9999, 0);
        assert!(near.comparisons < far.comparisons);
    }

    #[test]
    fn comparison_counts_reflect_actual_probes() {
        let keys = [2u64, 4, 6, 8, 10];
        // Empty window: no loop probe; one membership probe inside bounds.
        let out = binary_search_bounded(&keys, 6, 2, 2);
        assert_eq!(out.comparisons, 1);
        assert!(out.found);
        assert_eq!(out.position, 2);
        // Empty window past the end: nothing is ever compared.
        let out = binary_search_bounded(&keys, 6, 5, 5);
        assert_eq!(out.comparisons, 0);
        assert!(!out.found);
        // Lower bound past the end after a full search: the loop's `<`
        // probes are counted, the membership check never probes.
        let out = binary_search_bounded(&keys, 11, 0, keys.len());
        assert!(!out.found);
        assert!(
            out.comparisons <= 3,
            "log2(5) probes, no tail probe: {}",
            out.comparisons
        );
        // When the loop's last >= probe lands on the final position, the
        // membership answer reuses it: at most ceil(log2(n)) + 1 three-way
        // comparisons in total for any in-bounds search.
        for target in 0..12u64 {
            let out = binary_search_bounded(&keys, target, 0, keys.len());
            assert!(
                out.comparisons <= 4,
                "target {target}: {} comparisons",
                out.comparisons
            );
            assert_eq!(
                out.found,
                keys.binary_search(&target).is_ok(),
                "target {target}"
            );
        }
    }

    #[test]
    fn expected_iterations_monotone() {
        assert_eq!(expected_search_iterations(0.0), 1.0);
        assert_eq!(expected_search_iterations(1.0), 1.0);
        assert!(expected_search_iterations(8.0) > expected_search_iterations(2.0));
        assert!((expected_search_iterations(8.0) - 4.0).abs() < 1e-12);
    }
}
