//! `cargo xtask` — workspace invariant lints.
//!
//! `cargo xtask lint` enforces the structural rules the concurrency core's
//! correctness argument depends on but the compiler cannot check:
//!
//! 1. **`unsafe` stays where it is audited.** Only the allowlisted files
//!    (`crates/concurrent/src/rcu.rs`, `crates/common/src/prefetch.rs`)
//!    may contain `unsafe`; every other crate root must carry
//!    `#![forbid(unsafe_code)]` (the two crates owning allowlisted files
//!    carry `#![deny(unsafe_code)]` with a per-module allow instead).
//! 2. **Every `unsafe` site is justified.** Each `unsafe` block/impl must
//!    be immediately preceded by a `// SAFETY:` comment.
//! 3. **Synchronization goes through the shims.** No file outside
//!    `crates/common/src/sync.rs` and `crates/check/` may name
//!    `std::sync::atomic` or `parking_lot` directly — otherwise the model
//!    checker silently loses sight of those operations.
//! 4. **Write-ahead ordering is textual.** Inside any one function body, no
//!    `DurabilitySink` call (`.log_write(`, `.log_writes(`,
//!    `.checkpoint(`, `.replace_shards(`) may appear after a snapshot
//!    publication (`.publish(`, `.publish_salvaging(`) — the durability
//!    contract is "durable before published", and a sink call textually
//!    after the publish is almost certainly a write acknowledged to
//!    readers before it could be recovered.
//!
//! The linter is deliberately text-based (the offline container has no
//! `syn`): comments and string literals are masked out before scanning, so
//! the rules see only code, and line numbers stay exact.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files allowed to contain `unsafe` (workspace-relative, `/`-separated).
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/concurrent/src/rcu.rs",
    "crates/common/src/prefetch.rs",
];

/// Files (or directory prefixes) allowed to name `std::sync::atomic` /
/// `parking_lot` directly: the sync shims themselves and the model
/// checker under them.
const SYNC_ALLOWLIST: &[&str] = &["crates/common/src/sync.rs", "crates/check/"];

/// Crates whose root carries `#![deny(unsafe_code)]` + a scoped module
/// allow instead of the blanket forbid, because they own an allowlisted
/// unsafe file.
const DENY_CRATES: &[&str] = &["crates/common/", "crates/concurrent/"];

/// Publication calls that end a function's right to touch the sink.
const PUBLISH_CALLS: &[&str] = &[".publish(", ".publish_salvaging("];

/// `DurabilitySink` call sites (method-call syntax, so trait *definitions*
/// and similarly named free functions don't match).
const SINK_CALLS: &[&str] = &[
    ".log_write(",
    ".log_writes(",
    ".checkpoint(",
    ".replace_shards(",
];

#[derive(Debug, PartialEq, Eq)]
struct Violation {
    path: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Replaces the contents of comments, string literals and char literals
/// with spaces (newlines preserved), so scans see code only and byte
/// offsets / line numbers stay exact.
fn mask_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                // Ordinary string: skip to the unescaped closing quote.
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        out[i] = b' ';
                        i += 1;
                        if i < bytes.len() && bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                        continue;
                    }
                    if bytes[i] != b'\n' {
                        out[i] = b' ';
                    }
                    i += 1;
                }
                i += 1;
            }
            b'r' if bytes.get(i + 1) == Some(&b'"') || bytes.get(i + 1) == Some(&b'#') => {
                // Raw string r"..." / r#"..."# / r##"..."##.
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    j += 1;
                    'raw: while j < bytes.len() {
                        if bytes[j] == b'"' {
                            let mut k = j + 1;
                            let mut closing = 0usize;
                            while bytes.get(k) == Some(&b'#') && closing < hashes {
                                closing += 1;
                                k += 1;
                            }
                            if closing == hashes {
                                j = k;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    for slot in out.iter_mut().take(j).skip(start) {
                        if *slot != b'\n' {
                            *slot = b' ';
                        }
                    }
                    i = j;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // bytes ('x', '\n', '\u{...}'); a lifetime never closes.
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'\\') {
                    j += 2;
                    while j < bytes.len() && bytes[j] != b'\'' && j - i < 12 {
                        j += 1;
                    }
                } else {
                    // One (possibly multi-byte) character.
                    j += 1;
                    while j < bytes.len() && bytes[j] & 0xC0 == 0x80 {
                        j += 1;
                    }
                }
                if bytes.get(j) == Some(&b'\'') {
                    for slot in out.iter_mut().take(j + 1).skip(i) {
                        if *slot != b'\n' {
                            *slot = b' ';
                        }
                    }
                    i = j + 1;
                } else {
                    i += 1; // a lifetime; leave it
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("masking only writes ASCII spaces over valid UTF-8")
}

fn line_of(src: &str, offset: usize) -> usize {
    src[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

/// Byte offsets of every match of `needle` in `haystack` that is not
/// immediately surrounded by identifier characters (a crude word
/// boundary).
fn word_matches(haystack: &str, needle: &str) -> Vec<usize> {
    let ident = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    let bytes = haystack.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !ident(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !ident(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// Whether the contiguous `//` comment block directly above `line`
/// (1-indexed) contains a `SAFETY:` marker.
fn has_safety_comment_above(src: &str, line: usize) -> bool {
    let lines: Vec<&str> = src.lines().collect();
    let mut idx = line.saturating_sub(1); // 0-indexed line of the unsafe
    while idx > 0 {
        let above = lines[idx - 1].trim_start();
        if above.starts_with("//") {
            if above.contains("SAFETY:") {
                return true;
            }
            idx -= 1;
        } else {
            return false;
        }
    }
    false
}

/// Is this file one of the given workspace-relative allowlist entries (a
/// trailing-`/` entry allowlists the whole directory)?
fn allowlisted(rel_path: &str, allowlist: &[&str]) -> bool {
    allowlist.iter().any(|entry| {
        if entry.ends_with('/') {
            rel_path.starts_with(entry)
        } else {
            rel_path == *entry
        }
    })
}

/// Whether `rel_path` is a crate target root (where `#![forbid]` lives).
fn is_target_root(rel_path: &str) -> bool {
    rel_path.ends_with("/src/lib.rs")
        || rel_path.ends_with("/src/main.rs")
        || (rel_path.contains("/src/bin/") && rel_path.ends_with(".rs"))
}

/// Extracts the byte ranges of every `fn` body in masked source: from the
/// `{` that opens the body to its matching `}`.
fn fn_body_ranges(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut ranges = Vec::new();
    for at in word_matches(masked, "fn") {
        // The body opens at the first `{` after the signature (no
        // signature in this workspace puts a `{` ahead of the body).
        let Some(open_rel) = masked[at..].find('{') else {
            continue;
        };
        let open = at + open_rel;
        let mut depth = 0usize;
        let mut end = None;
        for (i, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(end) = end {
            ranges.push((open, end));
        }
    }
    ranges
}

/// Lints one file's source. `rel_path` is workspace-relative with `/`
/// separators.
fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    let masked = mask_comments_and_strings(src);

    // Rules 1 + 2: unsafe containment and SAFETY justification.
    for at in word_matches(&masked, "unsafe") {
        let line = line_of(&masked, at);
        if !allowlisted(rel_path, UNSAFE_ALLOWLIST) {
            violations.push(Violation {
                path: rel_path.to_string(),
                line,
                rule: "unsafe-allowlist",
                message: "`unsafe` outside the audited allowlist (rcu.rs, prefetch.rs)".into(),
            });
        }
        if !has_safety_comment_above(src, line) {
            violations.push(Violation {
                path: rel_path.to_string(),
                line,
                rule: "safety-comment",
                message: "`unsafe` site without a `// SAFETY:` comment directly above".into(),
            });
        }
    }

    // Rule 3: synchronization primitives only via the shims.
    if !allowlisted(rel_path, SYNC_ALLOWLIST) {
        for needle in ["std::sync::atomic", "core::sync::atomic", "parking_lot"] {
            for at in word_matches(&masked, needle) {
                violations.push(Violation {
                    path: rel_path.to_string(),
                    line: line_of(&masked, at),
                    rule: "sync-shims",
                    message: format!(
                        "direct `{needle}` use; import from `csv_common::sync` so the model \
                         checker sees the operation"
                    ),
                });
            }
        }
    }

    // Rule 1 (root half): unsafe hygiene attributes on crate roots.
    if is_target_root(rel_path) {
        let denying = DENY_CRATES.iter().any(|c| rel_path.starts_with(c));
        let required = if denying {
            "#![deny(unsafe_code)]"
        } else {
            "#![forbid(unsafe_code)]"
        };
        if !masked.contains(required) {
            violations.push(Violation {
                path: rel_path.to_string(),
                line: 1,
                rule: "unsafe-attr",
                message: format!("crate root is missing `{required}`"),
            });
        }
    }

    // Rule 4: no sink calls after a publication in the same fn body.
    for (open, end) in fn_body_ranges(&masked) {
        let body = &masked[open..end];
        let first_publish = PUBLISH_CALLS
            .iter()
            .flat_map(|call| body.match_indices(*call).map(|(i, _)| i))
            .min();
        let Some(first_publish) = first_publish else {
            continue;
        };
        for call in SINK_CALLS {
            for (i, _) in body.match_indices(*call) {
                if i > first_publish {
                    violations.push(Violation {
                        path: rel_path.to_string(),
                        line: line_of(&masked, open + i),
                        rule: "publish-ordering",
                        message: format!(
                            "`{call}` after a publication in the same fn body: sink calls \
                             must complete before the snapshot publishes (write-ahead)"
                        ),
                    });
                }
            }
        }
    }

    violations
}

/// Recursively collects `.rs` files under `dir` (skipping `target/`).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `<root>/crates` (vendored stubs under
/// `<root>/vendor` are third-party API shims, not workspace code).
fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut violations = Vec::new();
    for file in files {
        let src = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .expect("collected under root")
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(lint_source(&rel, &src));
    }
    Ok(violations)
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1);
    match mode.as_deref() {
        Some("lint") => {
            let violations = match lint_workspace(&workspace_root()) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if violations.is_empty() {
                println!("xtask lint: workspace clean");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn masking_hides_comments_strings_and_chars_but_keeps_lines() {
        let src = "let a = \"unsafe\"; // unsafe here\nlet b = 'x'; /* unsafe\nstill */ let c = r#\"unsafe\"#;\n";
        let masked = mask_comments_and_strings(src);
        assert_eq!(masked.lines().count(), src.lines().count());
        assert!(!masked.contains("unsafe"));
        assert!(masked.contains("let a"));
        assert!(masked.contains("let c"));
    }

    #[test]
    fn masking_leaves_lifetimes_alone() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        assert_eq!(mask_comments_and_strings(src), src);
    }

    #[test]
    fn unsafe_outside_the_allowlist_is_flagged() {
        let src = "// SAFETY: justified\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let violations = lint_source("crates/core/src/smooth.rs", src);
        assert_eq!(rules(&violations), vec!["unsafe-allowlist"]);
        // The same source in an allowlisted file is clean.
        assert!(lint_source("crates/concurrent/src/rcu.rs", src).is_empty());
    }

    #[test]
    fn unsafe_without_a_safety_comment_is_flagged_even_in_the_allowlist() {
        let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let violations = lint_source("crates/concurrent/src/rcu.rs", src);
        assert_eq!(rules(&violations), vec!["safety-comment"]);
    }

    #[test]
    fn the_word_unsafe_in_comments_and_strings_does_not_count() {
        let src = "// this code is unsafe in spirit\nlet s = \"unsafe\";\n";
        assert!(lint_source("crates/core/src/lib.rs", src)
            .iter()
            .all(|v| v.rule == "unsafe-attr"));
    }

    #[test]
    fn direct_atomic_and_parking_lot_imports_are_flagged() {
        let src = "use std::sync::atomic::AtomicUsize;\nuse parking_lot::Mutex;\n";
        let violations = lint_source("crates/core/src/smooth.rs", src);
        assert_eq!(rules(&violations), vec!["sync-shims", "sync-shims"]);
        // The shims themselves and the checker may.
        assert!(lint_source("crates/common/src/sync.rs", src).is_empty());
        assert!(lint_source("crates/check/src/scheduler.rs", src).is_empty());
    }

    #[test]
    fn crate_roots_must_carry_the_unsafe_attr() {
        let bare = "pub mod a;\n";
        let violations = lint_source("crates/core/src/lib.rs", bare);
        assert_eq!(rules(&violations), vec!["unsafe-attr"]);
        assert!(lint_source(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod a;\n"
        )
        .is_empty());
        // Crates owning allowlisted unsafe files deny instead of forbid.
        let violations = lint_source("crates/concurrent/src/lib.rs", bare);
        assert_eq!(rules(&violations), vec!["unsafe-attr"]);
        assert!(lint_source(
            "crates/concurrent/src/lib.rs",
            "#![deny(unsafe_code)]\npub mod a;\n"
        )
        .is_empty());
        // Non-roots don't need the attribute.
        assert!(lint_source("crates/core/src/smooth.rs", bare).is_empty());
    }

    #[test]
    fn sink_calls_after_a_publish_are_flagged() {
        let bad =
            "fn write(&self) {\n    self.cell.publish(next);\n    sink.log_write(k, v, None);\n}\n";
        let violations = lint_source("crates/concurrent/src/sharded.rs", bad);
        assert_eq!(rules(&violations), vec!["publish-ordering"]);
        assert_eq!(violations[0].line, 3);
        let good =
            "fn write(&self) {\n    sink.log_write(k, v, None);\n    self.cell.publish(next);\n}\n";
        assert!(lint_source("crates/concurrent/src/sharded.rs", good).is_empty());
    }

    #[test]
    fn publish_ordering_is_scoped_per_fn_body() {
        // A publish in one fn does not poison a sink call in the next.
        let src =
            "fn a(&self) { self.cell.publish(next); }\nfn b(&self) { sink.checkpoint(&c); }\n";
        assert!(lint_source("crates/concurrent/src/sharded.rs", src).is_empty());
    }

    #[test]
    fn sink_method_definitions_do_not_count_as_call_sites() {
        let src = "fn apply(&self) {\n    self.cell.publish(next);\n    log_write(k);\n}\nfn checkpoint() {}\n";
        assert!(lint_source("crates/concurrent/src/maintenance.rs", src).is_empty());
    }

    /// The real workspace must be clean — this is the regression guard
    /// that keeps the invariants true as the codebase grows.
    #[test]
    fn the_workspace_is_clean() {
        let violations = lint_workspace(&workspace_root()).expect("workspace readable");
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
