//! Offline stub for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface the
//! workspace uses: `read()`/`write()`/`lock()` return guards directly (no
//! `Result`). Poisoning — which parking_lot does not have — is erased by
//! recovering the inner guard, matching parking_lot's semantics of letting
//! lock users continue after a panicking holder.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader–writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_roundtrip() {
        let lock = RwLock::new(5usize);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 2;
        assert_eq!(*lock.read(), 7);
        assert_eq!(lock.into_inner(), 7);
    }

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }

    #[test]
    fn try_locks_report_contention() {
        let lock = RwLock::new(1);
        let w = lock.write();
        assert!(lock.try_read().is_none());
        assert!(lock.try_write().is_none());
        drop(w);
        assert!(lock.try_read().is_some());
    }
}
