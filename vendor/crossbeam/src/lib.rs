//! Offline stub for `crossbeam`, covering the `crossbeam::thread::scope`
//! API the workspace uses on top of `std::thread::scope`.

pub mod thread {
    //! Scoped threads with the crossbeam calling convention: the spawn
    //! closure receives a `&Scope` argument (ignored by every caller in this
    //! workspace) and `scope` returns a `Result` instead of propagating child
    //! panics as a resumed unwind value.

    /// Handle passed to `scope`'s closure; wraps the std scope so nested
    /// spawns keep working.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope again so
        /// crossbeam-style `|_| ...` closures (and nested spawns) work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let this = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&this)))
        }
    }

    /// Runs `f` with a scope in which borrowing, non-`'static` threads can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child panics the calling thread (std
    /// semantics), so the `Ok` returned here is unconditional; callers'
    /// `.expect(...)` never fires but keeps the crossbeam call shape.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
