//! Offline stub for `crossbeam`, covering the `crossbeam::thread::scope`
//! API the workspace uses on top of `std::thread::scope`.

pub mod thread {
    //! Scoped threads with the crossbeam calling convention: the spawn
    //! closure receives a `&Scope` argument (ignored by every caller in this
    //! workspace) and `scope` returns a `Result` instead of propagating child
    //! panics as a resumed unwind value.
    //!
    //! On top of the std scope, every spawned thread decrements a shared
    //! completion counter as its final action, and `scope` re-reads that
    //! counter (Acquire) after the std scope has joined everything. The std
    //! join edge itself lives in non-generic `std::thread::ScopeData` code,
    //! which a ThreadSanitizer build cannot instrument without
    //! `-Zbuild-std`; the counter round-trip here is compiled into *this*
    //! workspace, so TSan sees a release/acquire edge from everything a
    //! scoped thread did to everything after the scope — eliminating the
    //! false "race" between thread work and post-scope reads/drops. Outside
    //! sanitizer builds it costs one relaxed RMW per thread and a handful
    //! of already-drained loads per scope.

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Handle passed to `scope`'s closure; wraps the std scope so nested
    /// spawns keep working.
    #[derive(Clone)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        running: Arc<AtomicUsize>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Decrements the scope's completion counter when dropped — on normal
    /// exit *and* when the thread unwinds, so the counter always drains.
    struct Completion(Arc<AtomicUsize>);

    impl Drop for Completion {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Release);
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope again so
        /// crossbeam-style `|_| ...` closures (and nested spawns) work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.running.fetch_add(1, Ordering::Relaxed);
            let completion = Completion(Arc::clone(&self.running));
            let this = self.clone();
            ScopedJoinHandle(self.inner.spawn(move || {
                // Declared first so it drops last: the decrement is the
                // thread's final visible action.
                let _completion = completion;
                f(&this)
            }))
        }
    }

    /// Runs `f` with a scope in which borrowing, non-`'static` threads can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child panics the calling thread (std
    /// semantics), so the `Ok` returned here is unconditional; callers'
    /// `.expect(...)` never fires but keeps the crossbeam call shape.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let running = Arc::new(AtomicUsize::new(0));
        let result = std::thread::scope(|s| {
            let scope = Scope {
                inner: s,
                running: Arc::clone(&running),
            };
            f(&scope)
        });
        // The std scope has already joined every thread; this loop's
        // Acquire load is the instrumented edge TSan pairs with each
        // thread's Release decrement (it spins only if a sanitizer delays
        // a decrement's visibility).
        while running.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawns_work() {
        let total: u64 = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u64).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(total, 42);
    }
}
