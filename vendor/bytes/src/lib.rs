//! Offline stub for `bytes`.
//!
//! `Vec<u8>`-backed implementations of `Bytes`/`BytesMut` and the little
//! slice of `Buf`/`BufMut` the SOSD I/O code needs. No reference counting or
//! zero-copy splitting — `freeze` simply transfers the buffer.

use std::ops::Deref;

/// Read cursor over a byte source.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes. Panics when fewer than `n` remain.
    fn advance(&mut self, n: usize);

    /// Reads a little-endian `u64`, advancing the cursor. Panics when fewer
    /// than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64;

    /// Reads one byte, advancing the cursor. Panics when empty.
    fn get_u8(&mut self) -> u8;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let value = u64::from_le_bytes(head.try_into().expect("split_at(8) yields 8 bytes"));
        *self = rest;
        value
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(7);
        buf.put_u64_le(u64::MAX);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 16);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u64_le(), 7);
        assert_eq!(cursor.remaining(), 8);
        assert_eq!(cursor.get_u64_le(), u64::MAX);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn u8_and_advance() {
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u8(2);
        buf.put_u8(3);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        cursor.advance(1);
        assert_eq!(cursor.get_u8(), 2);
        assert_eq!(Bytes::copy_from_slice(&frozen).to_vec(), vec![1, 2, 3]);
    }
}
