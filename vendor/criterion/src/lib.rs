//! Offline stub for `criterion`.
//!
//! A miniature wall-clock benchmark harness exposing the subset of the
//! criterion API the workspace's benches use: benchmark groups with
//! `sample_size`/`measurement_time`/`throughput`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`/`iter_batched`, `BenchmarkId` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark takes `sample_size` samples; each
//! sample times a batch of iterations sized so one sample costs roughly
//! `measurement_time / sample_size`. The mean, min and max per-iteration
//! times are printed as `<group>/<id>  time: [...]`, plus element throughput
//! when configured. Like real criterion, running without the `--bench` CLI
//! argument (i.e. under `cargo test`) executes every benchmark body exactly
//! once so benches stay cheap in test runs.

use std::time::{Duration, Instant};

/// Re-export so bench code can use `criterion::black_box`.
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost; the stub runs one setup per
/// routine call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// `true` when invoked under `cargo test` (no `--bench` argument).
    quick: bool,
    /// Samples to take.
    samples: usize,
    /// Total measurement budget.
    budget: Duration,
    /// Collected per-iteration durations (one entry per sample).
    sample_means: Vec<f64>,
}

impl Bencher {
    fn new(quick: bool, samples: usize, budget: Duration) -> Self {
        Self {
            quick,
            samples,
            budget,
            sample_means: Vec::new(),
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            black_box(routine());
            return;
        }
        // Calibrate: time one call to size the per-sample batch.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.budget.as_secs_f64() / self.samples as f64;
        let iters = (per_sample / one.as_secs_f64()).clamp(1.0, 1e7) as u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.sample_means.push(elapsed.as_secs_f64() / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.quick {
            let input = setup();
            black_box(routine(input));
            return;
        }
        let start = Instant::now();
        let input = setup();
        let setup_cost = start.elapsed();
        let start = Instant::now();
        black_box(routine(input));
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.budget.as_secs_f64() / self.samples as f64;
        let iters = (per_sample / (one + setup_cost).as_secs_f64()).clamp(1.0, 1e6) as u64;
        for _ in 0..self.samples {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            self.sample_means.push(total.as_secs_f64() / iters as f64);
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates the group with a throughput so rates get reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(
            self.criterion.quick,
            self.sample_size,
            self.measurement_time,
        );
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark parameterised by a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(
            self.criterion.quick,
            self.sample_size,
            self.measurement_time,
        );
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let label = format!("{}/{}", self.name, id.id);
        if bencher.quick {
            println!("{label}: ok (test mode, 1 iteration)");
            return;
        }
        let samples = &bencher.sample_means;
        if samples.is_empty() {
            println!("{label}: no samples collected");
            return;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let mut line = format!(
            "{label}  time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                line.push_str(&format!("  thrpt: {:.0} elem/s", n as f64 / mean));
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                line.push_str(&format!(
                    "  thrpt: {:.1} MiB/s",
                    n as f64 / mean / (1 << 20) as f64
                ));
            }
            _ => {}
        }
        println!("{line}");
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror real criterion: `cargo bench` passes `--bench`; its absence
        // means we are running under `cargo test`, where each benchmark body
        // executes once as a smoke test.
        let quick = !std::env::args().any(|a| a == "--bench");
        Self { quick }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function("bench", f);
        group.finish();
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("alpha", 3).id, "alpha/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).id, "0.5");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn quick_mode_runs_each_body_once() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group
            .sample_size(50)
            .measurement_time(Duration::from_secs(60));
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measured_mode_collects_samples() {
        let mut c = Criterion { quick: false };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("spin", 1), &5u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with('s'));
    }
}
