//! Offline stub for `rayon`.
//!
//! Implements the slice of the rayon API this workspace uses — `par_iter`,
//! `into_par_iter`, `map`/`for_each`/`collect`, `join`, and the global
//! thread-count configuration — on top of `std::thread::scope`. Work is
//! split into one contiguous chunk per worker (no work stealing), which is
//! the right shape for the workspace's workloads: uniform-cost batches of
//! sub-tree smoothing jobs and per-shard index sweeps. Results always come
//! back in input order.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = not configured; fall back to `std::thread::available_parallelism`.
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread width override installed by [`ThreadPool::install`];
    /// 0 = no override.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    match NUM_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        n => n,
    }
}

/// A scoped thread-pool width, mirroring `rayon::ThreadPool`.
///
/// The stub has no persistent workers; `install` scopes the width to the
/// calling thread for the duration of the closure, which covers the
/// supported usage (parallel operations invoked directly from the installed
/// closure).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's width active.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|c| c.replace(self.num_threads.max(1)));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        f()
    }

    /// This pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.max(1)
    }
}

/// Error type mirroring rayon's; the stub's global build cannot fail but the
/// call sites keep their `Result` handling.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool already configured")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the global pool.
///
/// The stub has no persistent pool; `build_global` records the requested
/// width, which every subsequent parallel operation consults. Unlike rayon,
/// calling it twice reconfigures instead of failing — convenient for tests.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (auto-detected) width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; 0 means auto-detect.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the width globally.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        NUM_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }

    /// Builds a scoped pool handle (see [`ThreadPool::install`]).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads })
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let ha = s.spawn(a);
        let rb = b();
        (ha.join().expect("rayon-stub join worker panicked"), rb)
    })
}

/// Order-preserving parallel map over a shared slice: one contiguous chunk
/// per worker, results concatenated in input order.
fn chunked_map<'a, T: Sync, R: Send>(items: &'a [T], f: &(impl Fn(&'a T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon-stub worker panicked"));
        }
    });
    out
}

/// Order-preserving parallel map consuming a vector.
fn chunked_map_owned<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon-stub worker panicked"));
        }
    });
    out
}

/// Conversion that `collect()` on the stub's parallel iterators targets.
pub trait FromParallelVec<R> {
    /// Builds the collection from results already gathered in input order.
    fn from_parallel_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelVec<R> for Vec<R> {
    fn from_parallel_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, R, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _out: PhantomData,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        chunked_map(self.items, &f);
    }

    /// Accepted for API compatibility; chunking is already coarse.
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }
}

/// Result of `ParIter::map`.
pub struct ParMap<'a, T, R, F> {
    items: &'a [T],
    f: F,
    _out: PhantomData<R>,
}

impl<'a, T, R, F> ParMap<'a, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Gathers the mapped results in input order.
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        C::from_parallel_vec(chunked_map(self.items, &self.f))
    }
}

/// Owning parallel iterator over a vector.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Maps each element in parallel, consuming the input.
    pub fn map<R, F>(self, f: F) -> IntoParMap<T, R, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        IntoParMap {
            items: self.items,
            f,
            _out: PhantomData,
        }
    }

    /// Runs `f` on every element in parallel, consuming the input.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        chunked_map_owned(self.items, &f);
    }
}

/// Result of `IntoParIter::map`.
pub struct IntoParMap<T, R, F> {
    items: Vec<T>,
    f: F,
    _out: PhantomData<R>,
}

impl<T, R, F> IntoParMap<T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Gathers the mapped results in input order.
    pub fn collect<C: FromParallelVec<R>>(self) -> C {
        C::from_parallel_vec(chunked_map_owned(self.items, &self.f))
    }
}

/// `par_iter()` entry point (the prelude trait).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: 'a;
    /// Returns a borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            items: self.as_slice(),
        }
    }
}

/// `into_par_iter()` entry point (the prelude trait).
pub trait IntoParallelIterator {
    /// Owned element type.
    type Item: Send;
    /// Returns an owning parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import target mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), input.len());
        assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn into_par_map_preserves_order() {
        let input: Vec<String> = (0..500).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens[0], 1);
        assert_eq!(lens[499], 3);
    }

    #[test]
    fn for_each_visits_everything() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..777).collect();
        items.par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 777);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn thread_pool_builder_configures_width() {
        crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(crate::current_num_threads(), 3);
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn scoped_pools_override_and_restore() {
        crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build_global()
            .unwrap();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(5)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 5);
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 5);
        assert_eq!(crate::current_num_threads(), 2);
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[9], 81);
    }
}
