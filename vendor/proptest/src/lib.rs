//! Offline stub for `proptest`.
//!
//! A deterministic property-testing harness exposing the slice of the
//! proptest API the workspace's tests use: the `proptest!` macro with
//! `#![proptest_config(...)]`, range / tuple / `any::<T>()` strategies,
//! `collection::{vec, btree_set}`, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from real proptest: values are drawn from a SplitMix64 RNG
//! seeded from the test name and case index (fully deterministic across
//! runs), and failing cases are reported with their case number but not
//! shrunk.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F, O>
        where
            Self: Sized,
        {
            Map {
                inner: self,
                f,
                _out: PhantomData,
            }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F, O> {
        inner: S,
        f: F,
        _out: PhantomData<O>,
    }

    impl<S: Strategy, F: Fn(S::Value) -> O, O> Strategy for Map<S, F, O> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Generates a constant.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as u128 + offset) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty float range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty float range strategy");
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets whose size falls in `size` (best effort: when
    /// the element domain is too small to reach the target size, the set
    /// stops growing after a bounded number of attempts).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(20) + 64 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod test_runner {
    //! Configuration and the deterministic RNG.

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// SplitMix64 — deterministic, seedable, good enough for test data.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test identifier and case index.
        pub fn deterministic(name: &str, case: u32) -> Self {
            let mut seed = 0xcbf29ce484222325u64; // FNV offset basis
            for byte in name.bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            Self {
                state: seed ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15)),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Failure raised by `prop_assert*` macros inside a property body.
    pub type TestCaseError = String;

    /// Result type of a property body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod prelude {
    //! Glob-import target mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Mirrors `proptest::prelude::prop`.
        pub use crate::collection;
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fails the current property case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current property case when both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares deterministic property tests.
///
/// Accepts the standard proptest surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn my_property(x in 0u64..100, mut v in prop::collection::vec(any::<u64>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    (@body ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(message) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn collections_respect_size(mut v in prop::collection::vec(any::<u64>(), 2..9),
                                    s in crate::collection::btree_set(0u64..1_000_000, 4..40)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            v.sort_unstable();
            prop_assert!(s.len() >= 4 && s.len() < 40, "set size {}", s.len());
        }

        #[test]
        fn tuples_and_map(pair in (0u8..4, any::<u64>()), doubled in (1usize..50).prop_map(|n| n * 2)) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("seed", 7);
        let mut b = crate::test_runner::TestRng::deterministic("seed", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("seed", 8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_the_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
