//! Offline stub for `serde_derive`.
//!
//! The build environment has no network access and no vendored copy of the
//! real serde, so the workspace ships this minimal substitute: the derive
//! macros accept the same syntax (including `#[serde(...)]` attributes) and
//! expand to nothing. The matching `serde` stub crate provides blanket
//! implementations of the marker traits, so `#[derive(Serialize)]` plus a
//! `T: Serialize` bound both compile while no code in the workspace actually
//! serialises anything. Swap both stubs for the real crates by pointing the
//! `[patch]`-free workspace dependencies back at crates.io.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
