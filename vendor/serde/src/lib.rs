//! Offline stub for `serde`.
//!
//! See `serde_derive`'s crate docs for the rationale. `Serialize` and
//! `Deserialize` are blanket-implemented marker traits here: any generic
//! bound on them is satisfied and the derives (re-exported from the stub
//! `serde_derive`) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types (the lifetime parameter of the real trait is dropped because no
/// code in this workspace deserialises).
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
